//! Unit-interval scalar newtypes: [`Quality`], [`Awareness`] and
//! [`Popularity`].
//!
//! The paper's popularity model (Section 3.1) couples three quantities that
//! all live in `[0, 1]`:
//!
//! * **Quality** `Q(p)` — the extent to which an average user would "like"
//!   page `p` if she were aware of it (Definition via Equation 1).
//! * **Awareness** `A(p, t)` — the fraction of monitored users who have
//!   visited `p` at least once by time `t` (Definition 3.2).
//! * **Popularity** `P(p, t) = A(p, t) · Q(p)` (Equation 1).
//!
//! Each quantity gets its own newtype so that, for example, a quality value
//! can never be accidentally passed where an awareness value is expected.
//! All three validate their range on construction and are `Copy`.

use crate::error::{ensure_unit_interval, ModelError, ModelResult};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

macro_rules! unit_scalar {
    ($(#[$doc:meta])* $name:ident, $label:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The smallest admissible value, `0.0`.
            pub const ZERO: $name = $name(0.0);
            /// The largest admissible value, `1.0`.
            pub const ONE: $name = $name(1.0);

            /// Construct a validated value; errors unless `value ∈ [0, 1]`
            /// and finite.
            pub fn new(value: f64) -> ModelResult<Self> {
                ensure_unit_interval($label, value).map($name)
            }

            /// Construct a value, clamping into `[0, 1]`.
            ///
            /// NaN clamps to `0.0`. Useful at the end of floating-point
            /// update rules where tiny negative values or values a hair
            /// above `1.0` can appear from rounding.
            pub fn clamped(value: f64) -> Self {
                if value.is_nan() {
                    $name(0.0)
                } else {
                    $name(value.clamp(0.0, 1.0))
                }
            }

            /// The raw `f64` value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Whether the value is exactly zero.
            #[inline]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.6}", self.0)
            }
        }

        impl Eq for $name {}

        // Total order is well defined because construction rejects NaN.
        #[allow(clippy::derive_ord_xor_partial_ord)]
        impl Ord for $name {
            fn cmp(&self, other: &Self) -> Ordering {
                self.0
                    .partial_cmp(&other.0)
                    .expect("unit scalars are never NaN")
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        impl TryFrom<f64> for $name {
            type Error = ModelError;
            fn try_from(value: f64) -> ModelResult<Self> {
                $name::new(value)
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

unit_scalar!(
    /// Intrinsic page quality `Q(p) ∈ [0, 1]`: the probability that an
    /// average user would "like" the page if made aware of it.
    Quality,
    "quality"
);

unit_scalar!(
    /// Awareness `A(p, t) ∈ [0, 1]`: the fraction of monitored users who
    /// have visited the page at least once by time `t`.
    Awareness,
    "awareness"
);

unit_scalar!(
    /// Popularity `P(p, t) ∈ [0, 1]`, defined as `A(p, t) · Q(p)`
    /// (Equation 1 of the paper).
    Popularity,
    "popularity"
);

impl Quality {
    /// The default maximum quality used in the paper's evaluation
    /// (Section 6.1): the quality of the single best page is 0.4, chosen
    /// from the fraction of Internet users who frequent the most popular
    /// portal site.
    pub const PAPER_MAX: Quality = Quality(0.4);
}

impl Awareness {
    /// Awareness measured over `m` monitored users is always a multiple of
    /// `1/m`; this constructs the awareness level `i/m`.
    pub fn of_fraction(aware_users: usize, monitored_users: usize) -> ModelResult<Self> {
        if monitored_users == 0 {
            return Err(ModelError::ZeroCount {
                what: "monitored users",
            });
        }
        if aware_users > monitored_users {
            return Err(ModelError::OutOfUnitInterval {
                what: "awareness",
                value: aware_users as f64 / monitored_users as f64,
            });
        }
        Ok(Awareness(aware_users as f64 / monitored_users as f64))
    }
}

impl Popularity {
    /// Popularity is the product of awareness and quality (Equation 1).
    pub fn from_awareness_and_quality(awareness: Awareness, quality: Quality) -> Self {
        // Both factors are in [0,1] so the product is too; no clamping
        // needed beyond guarding rounding.
        Popularity::clamped(awareness.value() * quality.value())
    }
}

/// Compute popularity from awareness and quality (free-function form of
/// [`Popularity::from_awareness_and_quality`], convenient in iterator
/// chains).
pub fn popularity(awareness: Awareness, quality: Quality) -> Popularity {
    Popularity::from_awareness_and_quality(awareness, quality)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_range() {
        assert!(Quality::new(0.0).is_ok());
        assert!(Quality::new(1.0).is_ok());
        assert!(Quality::new(-0.1).is_err());
        assert!(Quality::new(1.1).is_err());
        assert!(Quality::new(f64::NAN).is_err());
        assert!(Awareness::new(0.3).is_ok());
        assert!(Popularity::new(2.0).is_err());
    }

    #[test]
    fn clamped_never_fails() {
        assert_eq!(Quality::clamped(-3.0).value(), 0.0);
        assert_eq!(Quality::clamped(3.0).value(), 1.0);
        assert_eq!(Quality::clamped(f64::NAN).value(), 0.0);
        assert_eq!(Quality::clamped(0.25).value(), 0.25);
    }

    #[test]
    fn popularity_is_product_of_awareness_and_quality() {
        let a = Awareness::new(0.5).unwrap();
        let q = Quality::new(0.4).unwrap();
        let p = Popularity::from_awareness_and_quality(a, q);
        assert!((p.value() - 0.2).abs() < 1e-12);
        assert_eq!(p, popularity(a, q));
    }

    #[test]
    fn popularity_of_zero_awareness_is_zero() {
        let p = popularity(Awareness::ZERO, Quality::PAPER_MAX);
        assert!(p.is_zero());
    }

    #[test]
    fn popularity_never_exceeds_quality() {
        let q = Quality::new(0.7).unwrap();
        for i in 0..=10 {
            let a = Awareness::new(i as f64 / 10.0).unwrap();
            assert!(popularity(a, q) <= Popularity::new(q.value()).unwrap());
        }
    }

    #[test]
    fn awareness_of_fraction() {
        let a = Awareness::of_fraction(25, 100).unwrap();
        assert!((a.value() - 0.25).abs() < 1e-12);
        assert!(Awareness::of_fraction(101, 100).is_err());
        assert!(Awareness::of_fraction(1, 0).is_err());
        assert_eq!(Awareness::of_fraction(0, 100).unwrap(), Awareness::ZERO);
        assert_eq!(Awareness::of_fraction(100, 100).unwrap(), Awareness::ONE);
    }

    #[test]
    fn ordering_is_total_and_by_value() {
        let mut v = [
            Quality::new(0.9).unwrap(),
            Quality::new(0.1).unwrap(),
            Quality::new(0.5).unwrap(),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|q| q.value()).collect::<Vec<_>>(),
            vec![0.1, 0.5, 0.9]
        );
        assert!(Quality::ZERO < Quality::ONE);
    }

    #[test]
    fn conversions() {
        let q = Quality::try_from(0.3).unwrap();
        let raw: f64 = q.into();
        assert_eq!(raw, 0.3);
        assert!(Quality::try_from(1.5).is_err());
    }

    #[test]
    fn display_is_fixed_precision() {
        assert_eq!(Quality::PAPER_MAX.to_string(), "0.400000");
    }

    #[test]
    fn serde_is_transparent() {
        let q = Quality::new(0.4).unwrap();
        assert_eq!(serde_json::to_string(&q).unwrap(), "0.4");
        let back: Quality = serde_json::from_str("0.4").unwrap();
        assert_eq!(back, q);
    }
}
