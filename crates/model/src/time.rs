//! Discrete time in the popularity-evolution model.
//!
//! The paper divides time into discrete intervals ("at the end of each
//! interval the search engine measures the popularity of each Web page",
//! Section 3.1). The default unit interval used throughout its evaluation is
//! **one day**: the default community receives `v_u = 1000` visits *per day*
//! and the expected page lifetime is quoted in years (1.5 years).
//!
//! This module provides a [`Day`] time-point type, a [`SimClock`] that the
//! simulator advances, and conversions between days and years that use the
//! same convention everywhere (1 year = 365 days).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of days per year used for every lifetime conversion in the
/// workspace (the paper quotes lifetimes in years but simulates in days).
pub const DAYS_PER_YEAR: f64 = 365.0;

/// A discrete time point, measured in days since the start of a simulation.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Day(pub u64);

impl Day {
    /// The first day of a simulation.
    pub const ZERO: Day = Day(0);

    /// Construct a day from its index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Day(index)
    }

    /// The raw day index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The day index as `f64`, convenient for analytic formulas.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Days elapsed since `earlier` (saturating at zero if `earlier` is in
    /// the future).
    #[inline]
    pub fn since(self, earlier: Day) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// The next day.
    #[inline]
    pub fn next(self) -> Day {
        Day(self.0 + 1)
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {}", self.0)
    }
}

impl Add<u64> for Day {
    type Output = Day;
    fn add(self, rhs: u64) -> Day {
        Day(self.0 + rhs)
    }
}

impl AddAssign<u64> for Day {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Day> for Day {
    type Output = u64;
    fn sub(self, rhs: Day) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

/// Convert a duration expressed in years to days (e.g. the paper's default
/// expected lifetime of 1.5 years becomes 547.5 days).
#[inline]
pub fn years_to_days(years: f64) -> f64 {
    years * DAYS_PER_YEAR
}

/// Convert a duration expressed in days to years.
#[inline]
pub fn days_to_years(days: f64) -> f64 {
    days / DAYS_PER_YEAR
}

/// The simulation clock: a thin wrapper over [`Day`] that only moves
/// forwards. Keeping it as a separate type (rather than a bare counter in
/// the simulator) makes the "time only advances" invariant explicit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: Day,
}

impl SimClock {
    /// A clock positioned at day 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock positioned at an arbitrary day (checkpoint restore).
    pub fn starting_at(day: Day) -> Self {
        SimClock { now: day }
    }

    /// The current day.
    #[inline]
    pub fn now(&self) -> Day {
        self.now
    }

    /// Advance the clock by one day and return the *new* current day.
    pub fn tick(&mut self) -> Day {
        self.now = self.now.next();
        self.now
    }

    /// Advance the clock by `days` days.
    pub fn advance(&mut self, days: u64) -> Day {
        self.now += days;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_arithmetic() {
        let d = Day::new(10);
        assert_eq!(d + 5, Day::new(15));
        assert_eq!(Day::new(15) - d, 5);
        assert_eq!(d.since(Day::new(3)), 7);
        assert_eq!(Day::new(3).since(d), 0, "since saturates at zero");
        assert_eq!(d.next(), Day::new(11));
    }

    #[test]
    fn day_display_and_accessors() {
        let d = Day::new(4);
        assert_eq!(d.to_string(), "day 4");
        assert_eq!(d.index(), 4);
        assert_eq!(d.as_f64(), 4.0);
        assert_eq!(Day::ZERO, Day::new(0));
    }

    #[test]
    fn year_day_conversions_are_inverse() {
        let years = 1.5;
        let days = years_to_days(years);
        assert!((days - 547.5).abs() < 1e-12);
        assert!((days_to_years(days) - years).abs() < 1e-12);
    }

    #[test]
    fn clock_only_moves_forward() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), Day::ZERO);
        assert_eq!(clock.tick(), Day::new(1));
        assert_eq!(clock.tick(), Day::new(2));
        assert_eq!(clock.advance(10), Day::new(12));
        assert_eq!(clock.now(), Day::new(12));
    }

    #[test]
    fn clock_can_resume_from_checkpoint() {
        let mut clock = SimClock::starting_at(Day::new(100));
        assert_eq!(clock.now(), Day::new(100));
        clock.tick();
        assert_eq!(clock.now(), Day::new(101));
    }

    #[test]
    fn mut_add_assign() {
        let mut d = Day::new(1);
        d += 2;
        assert_eq!(d, Day::new(3));
    }
}
