//! Error types shared by the whole `rrp` workspace.
//!
//! The model crate sits at the bottom of the dependency graph, so the error
//! type defined here is re-used (via `From` conversions or directly) by the
//! attention, ranking, analytic and simulation crates.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced when constructing or validating model values.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A value that must lie in the closed unit interval `[0, 1]` did not.
    OutOfUnitInterval {
        /// Human-readable name of the quantity (e.g. `"quality"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A value that must be strictly positive was zero or negative.
    NonPositive {
        /// Human-readable name of the quantity.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A count that must be non-zero was zero.
    ZeroCount {
        /// Human-readable name of the count (e.g. `"pages"`).
        what: &'static str,
    },
    /// A value was not finite (NaN or infinite).
    NotFinite {
        /// Human-readable name of the quantity.
        what: &'static str,
    },
    /// A community configuration violated a structural constraint,
    /// e.g. more monitored users than users.
    InvalidCommunity {
        /// Description of the violated constraint.
        reason: String,
    },
    /// A distribution parameter was invalid (e.g. a non-positive power-law
    /// exponent).
    InvalidDistribution {
        /// Description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::OutOfUnitInterval { what, value } => {
                write!(f, "{what} must lie in [0, 1], got {value}")
            }
            ModelError::NonPositive { what, value } => {
                write!(f, "{what} must be strictly positive, got {value}")
            }
            ModelError::ZeroCount { what } => {
                write!(f, "{what} must be non-zero")
            }
            ModelError::NotFinite { what } => {
                write!(f, "{what} must be a finite number")
            }
            ModelError::InvalidCommunity { reason } => {
                write!(f, "invalid community configuration: {reason}")
            }
            ModelError::InvalidDistribution { reason } => {
                write!(f, "invalid distribution parameters: {reason}")
            }
        }
    }
}

impl StdError for ModelError {}

/// Convenience alias used throughout the model crate.
pub type ModelResult<T> = Result<T, ModelError>;

/// Validate that `value` is finite and inside `[0, 1]`.
///
/// Returns the value unchanged on success so it can be used in a
/// constructor chain.
pub fn ensure_unit_interval(what: &'static str, value: f64) -> ModelResult<f64> {
    if !value.is_finite() {
        return Err(ModelError::NotFinite { what });
    }
    if !(0.0..=1.0).contains(&value) {
        return Err(ModelError::OutOfUnitInterval { what, value });
    }
    Ok(value)
}

/// Validate that `value` is finite and strictly positive.
pub fn ensure_positive(what: &'static str, value: f64) -> ModelResult<f64> {
    if !value.is_finite() {
        return Err(ModelError::NotFinite { what });
    }
    if value <= 0.0 {
        return Err(ModelError::NonPositive { what, value });
    }
    Ok(value)
}

/// Validate that `value` is non-zero.
pub fn ensure_nonzero(what: &'static str, value: usize) -> ModelResult<usize> {
    if value == 0 {
        return Err(ModelError::ZeroCount { what });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_interval_accepts_bounds() {
        assert_eq!(ensure_unit_interval("x", 0.0), Ok(0.0));
        assert_eq!(ensure_unit_interval("x", 1.0), Ok(1.0));
        assert_eq!(ensure_unit_interval("x", 0.5), Ok(0.5));
    }

    #[test]
    fn unit_interval_rejects_outside() {
        assert!(matches!(
            ensure_unit_interval("x", -0.01),
            Err(ModelError::OutOfUnitInterval { .. })
        ));
        assert!(matches!(
            ensure_unit_interval("x", 1.01),
            Err(ModelError::OutOfUnitInterval { .. })
        ));
    }

    #[test]
    fn unit_interval_rejects_nan_and_inf() {
        assert!(matches!(
            ensure_unit_interval("x", f64::NAN),
            Err(ModelError::NotFinite { .. })
        ));
        assert!(matches!(
            ensure_unit_interval("x", f64::INFINITY),
            Err(ModelError::NotFinite { .. })
        ));
    }

    #[test]
    fn positive_rejects_zero_and_negative() {
        assert!(ensure_positive("x", 1e-12).is_ok());
        assert!(matches!(
            ensure_positive("x", 0.0),
            Err(ModelError::NonPositive { .. })
        ));
        assert!(matches!(
            ensure_positive("x", -3.0),
            Err(ModelError::NonPositive { .. })
        ));
    }

    #[test]
    fn nonzero_count() {
        assert_eq!(ensure_nonzero("pages", 5), Ok(5));
        assert!(matches!(
            ensure_nonzero("pages", 0),
            Err(ModelError::ZeroCount { .. })
        ));
    }

    #[test]
    fn display_messages_mention_the_quantity() {
        let err = ensure_unit_interval("quality", 2.0).unwrap_err();
        assert!(err.to_string().contains("quality"));
        let err = ensure_positive("lifetime", -1.0).unwrap_err();
        assert!(err.to_string().contains("lifetime"));
        let err = ModelError::InvalidCommunity {
            reason: "monitored users exceed users".into(),
        };
        assert!(err.to_string().contains("monitored users exceed users"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: StdError>() {}
        assert_err::<ModelError>();
    }
}
