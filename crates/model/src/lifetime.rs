//! Page birth and death (Section 5.1 of the paper).
//!
//! Page retirement is modelled as a Poisson process with rate `λ`, so page
//! lifetimes are exponentially distributed with mean `l = 1/λ`. When a page
//! is retired, a new page *of equal quality* and zero awareness immediately
//! takes its place, keeping both the community size and the quality
//! distribution stationary.
//!
//! The simulator uses this module in one of two modes:
//!
//! * **Sampled** — each page draws an exponential lifetime at birth and is
//!   retired when it expires (what a discrete event simulation would do).
//! * **Memoryless per-day retirement** — each day every page independently
//!   retires with probability `1 − exp(−λ)` (`≈ λ` for small `λ`). Because
//!   the exponential distribution is memoryless the two modes are
//!   statistically identical; the second is what the expected-value
//!   simulator uses.

use crate::error::{ensure_positive, ModelResult};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Exponential page-lifetime model with mean `expected_lifetime_days`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeModel {
    /// Mean lifetime in days (`l`).
    expected_lifetime_days: f64,
}

impl LifetimeModel {
    /// Build a lifetime model with the given mean lifetime in days.
    pub fn new(expected_lifetime_days: f64) -> ModelResult<Self> {
        ensure_positive("expected page lifetime", expected_lifetime_days)?;
        Ok(LifetimeModel {
            expected_lifetime_days,
        })
    }

    /// Mean lifetime `l`, in days.
    #[inline]
    pub fn expected_lifetime_days(&self) -> f64 {
        self.expected_lifetime_days
    }

    /// Retirement rate `λ = 1/l`, per day.
    #[inline]
    pub fn rate(&self) -> f64 {
        1.0 / self.expected_lifetime_days
    }

    /// Probability that a page retires during one day,
    /// `1 − exp(−λ)`.
    #[inline]
    pub fn daily_retirement_probability(&self) -> f64 {
        1.0 - (-self.rate()).exp()
    }

    /// Probability that a page survives at least `days` days,
    /// `exp(−λ · days)`.
    #[inline]
    pub fn survival_probability(&self, days: f64) -> f64 {
        (-self.rate() * days.max(0.0)).exp()
    }

    /// Draw a random lifetime (in days, continuous) from the exponential
    /// distribution via inverse-CDF sampling.
    pub fn sample_lifetime_days<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u ∈ (0, 1]; -ln(u)·l is Exp(λ) distributed.
        let u: f64 = 1.0 - rng.gen::<f64>(); // avoid ln(0)
        -u.ln() * self.expected_lifetime_days
    }

    /// Decide whether a page retires today, flipping a coin with the daily
    /// retirement probability.
    pub fn retires_today<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.daily_retirement_probability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_non_positive_lifetime() {
        assert!(LifetimeModel::new(0.0).is_err());
        assert!(LifetimeModel::new(-1.0).is_err());
        assert!(LifetimeModel::new(f64::NAN).is_err());
        assert!(LifetimeModel::new(547.5).is_ok());
    }

    #[test]
    fn rate_is_reciprocal_of_mean() {
        let m = LifetimeModel::new(547.5).unwrap();
        assert!((m.rate() - 1.0 / 547.5).abs() < 1e-15);
        assert_eq!(m.expected_lifetime_days(), 547.5);
    }

    #[test]
    fn daily_probability_approximates_rate_for_long_lifetimes() {
        let m = LifetimeModel::new(547.5).unwrap();
        let p = m.daily_retirement_probability();
        assert!((p - m.rate()).abs() < 1e-5, "1 - exp(-λ) ≈ λ for small λ");
        assert!(p > 0.0 && p < 1.0);
    }

    #[test]
    fn survival_probability_decays() {
        let m = LifetimeModel::new(100.0).unwrap();
        assert_eq!(m.survival_probability(0.0), 1.0);
        assert!((m.survival_probability(100.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert!(m.survival_probability(1000.0) < m.survival_probability(10.0));
        // Negative durations are clamped to zero (survival = 1).
        assert_eq!(m.survival_probability(-5.0), 1.0);
    }

    #[test]
    fn sampled_lifetime_mean_close_to_expected() {
        let m = LifetimeModel::new(100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let samples = 50_000;
        let mean: f64 = (0..samples)
            .map(|_| m.sample_lifetime_days(&mut rng))
            .sum::<f64>()
            / samples as f64;
        assert!(
            (mean - 100.0).abs() < 2.0,
            "empirical mean {mean} should be within 2 days of 100"
        );
    }

    #[test]
    fn sampled_lifetimes_are_positive() {
        let m = LifetimeModel::new(30.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(m.sample_lifetime_days(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn retirement_frequency_matches_probability() {
        let m = LifetimeModel::new(10.0).unwrap();
        let p = m.daily_retirement_probability();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 100_000;
        let retired = (0..trials).filter(|_| m.retires_today(&mut rng)).count();
        let freq = retired as f64 / trials as f64;
        assert!(
            (freq - p).abs() < 0.01,
            "empirical retirement frequency {freq} vs probability {p}"
        );
    }
}
