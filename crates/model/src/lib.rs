//! # rrp-model — domain model for randomized rank promotion
//!
//! This crate is the foundation of the `rrp` workspace, a reproduction of
//! *"Shuffling a Stacked Deck: The Case for Partially Randomized Ranking of
//! Search Engine Results"* (Pandey, Roy, Olston, Cho, Chakrabarti, 2005).
//! It contains the vocabulary shared by every other crate:
//!
//! * [`PageId`] / [`UserId`] — identifier newtypes;
//! * [`Quality`], [`Awareness`], [`Popularity`] — the unit-interval scalars
//!   of the paper's popularity model `P(p,t) = A(p,t) · Q(p)` (Equation 1);
//! * [`CommunityConfig`] — the community characteristics of Table 1 /
//!   Section 6.1 (`n`, `u`, `m`, `v_u`, `v`, `l`);
//! * [`LifetimeModel`] — Poisson page birth/death (Section 5.1);
//! * quality distributions ([`PowerLawQuality`] et al.) — Section 6.1;
//! * [`Day`] / [`SimClock`] — discrete time;
//! * [`seed`] — deterministic RNG plumbing for reproducible experiments.
//!
//! ## Notation (Table 1 of the paper)
//!
//! | symbol | meaning | here |
//! |---|---|---|
//! | `P`, `n = \|P\|` | pages in the community | [`CommunityConfig::pages`] |
//! | `U`, `u = \|U\|` | users in the community | [`CommunityConfig::users`] |
//! | `U_m`, `m` | monitored users | [`CommunityConfig::monitored_users`] |
//! | `P(p, t)` | popularity among monitored users | [`Popularity`] |
//! | `V_u(p, t)` | user visits to `p` per unit time | `rrp-attention` / `rrp-sim` |
//! | `V(p, t)` | monitored-user visits to `p` per unit time | `rrp-attention` / `rrp-sim` |
//! | `v_u` | total user visits per unit time | [`CommunityConfig::total_visits_per_day`] |
//! | `v` | monitored visits per unit time | [`CommunityConfig::monitored_visits_per_day`] |
//! | `A(p, t)` | awareness among monitored users | [`Awareness`] |
//! | `Q(p)` | intrinsic page quality | [`Quality`] |
//! | `l` | expected page lifetime | [`CommunityConfig::expected_lifetime_days`] |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod community;
pub mod distribution;
pub mod error;
pub mod ids;
pub mod lifetime;
pub mod scalar;
pub mod seed;
pub mod time;

pub use community::{CommunityConfig, CommunityConfigBuilder};
pub use distribution::{
    assign_qualities, sample_qualities, ConstantQuality, PowerLawQuality, QualityDistribution,
    UniformQuality, ZipfQuality,
};
pub use error::{ModelError, ModelResult};
pub use ids::{PageId, PageIdGenerator, UserId};
pub use lifetime::LifetimeModel;
pub use scalar::{popularity, Awareness, Popularity, Quality};
pub use seed::{new_rng, splitmix64, Rng64, SeedSequence};
pub use time::{days_to_years, years_to_days, Day, SimClock, DAYS_PER_YEAR};
