//! Snapshot files: a checksummed envelope around an opaque payload, and
//! atomic rename-into-place so a crash mid-snapshot can never destroy the
//! previous good snapshot.
//!
//! The payload is whatever the caller serialised (the serving tier stores
//! engine + store + shard caches as JSON); this module only guarantees
//! that what [`read_snapshot`] hands back is byte-for-byte what
//! [`write_snapshot_atomic`] was given, or a typed error — never a
//! half-written or bit-rotted blob.
//!
//! ```text
//! file := magic "RRPSNAP0" (8 bytes) ‖ version u32-le
//!         ‖ payload_len u64-le ‖ crc u32-le ‖ payload
//! ```

use crate::crc32::crc32;
use crate::log::WalError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// The eight magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RRPSNAP0";
/// The current snapshot envelope version.
pub const SNAPSHOT_VERSION: u32 = 1;

const ENVELOPE_LEN: usize = 8 + 4 + 8 + 4;

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Write `payload` under `path` atomically: the envelope goes to a
/// sibling `.tmp` file, is flushed, and only then renamed over `path`.
/// At every instant `path` holds either the old snapshot or the new one.
pub fn write_snapshot_atomic(path: &Path, payload: &[u8]) -> Result<(), WalError> {
    let tmp = tmp_path(path);
    let mut out = Vec::with_capacity(ENVELOPE_LEN + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    file.write_all(&out)?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Read and verify the snapshot at `path`. `Ok(None)` means no snapshot
/// exists (a fresh directory); every integrity failure is a typed
/// [`WalError`], never a panic.
pub fn read_snapshot(path: &Path) -> Result<Option<Vec<u8>>, WalError> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() < ENVELOPE_LEN {
        return Err(WalError::BadHeader {
            detail: format!(
                "snapshot holds {} bytes, envelope needs {ENVELOPE_LEN}",
                bytes.len()
            ),
        });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(WalError::BadHeader {
            detail: "snapshot magic mismatch".to_string(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(WalError::UnsupportedVersion { found: version });
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
    let payload = &bytes[ENVELOPE_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(WalError::Corrupt {
            offset: 12,
            detail: format!(
                "snapshot payload is {} bytes, envelope promised {payload_len}",
                payload.len()
            ),
        });
    }
    if crc32(payload) != stored_crc {
        return Err(WalError::Corrupt {
            offset: ENVELOPE_LEN as u64,
            detail: "snapshot checksum mismatch".to_string(),
        });
    }
    Ok(Some(payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{flip_byte, truncate_at};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rrp-wal-snap-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_and_replaces_atomically() {
        let dir = scratch_dir("round-trip");
        let path = dir.join("snapshot.bin");
        assert_eq!(read_snapshot(&path).unwrap(), None, "fresh dir");
        write_snapshot_atomic(&path, b"first state").unwrap();
        assert_eq!(read_snapshot(&path).unwrap().unwrap(), b"first state");
        write_snapshot_atomic(&path, b"second state").unwrap();
        assert_eq!(read_snapshot(&path).unwrap().unwrap(), b"second state");
        assert!(!tmp_path(&path).exists(), "tmp file renamed away");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_stranded_tmp_file_never_shadows_the_real_snapshot() {
        let dir = scratch_dir("stranded-tmp");
        let path = dir.join("snapshot.bin");
        write_snapshot_atomic(&path, b"good").unwrap();
        // A crash between write and rename leaves a tmp file behind; the
        // read path must not look at it.
        fs::write(tmp_path(&path), b"half-written garbage").unwrap();
        assert_eq!(read_snapshot(&path).unwrap().unwrap(), b"good");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected_not_served() {
        let dir = scratch_dir("corrupt");
        let path = dir.join("snapshot.bin");
        write_snapshot_atomic(&path, b"precious bytes").unwrap();

        let len = fs::metadata(&path).unwrap().len();
        for offset in 0..len {
            write_snapshot_atomic(&path, b"precious bytes").unwrap();
            flip_byte(&path, offset).unwrap();
            assert!(
                read_snapshot(&path).is_err(),
                "flip at {offset} must not verify"
            );
        }

        write_snapshot_atomic(&path, b"precious bytes").unwrap();
        truncate_at(&path, len - 3).unwrap();
        assert!(read_snapshot(&path).is_err(), "truncated payload");
        truncate_at(&path, 5).unwrap();
        assert!(read_snapshot(&path).is_err(), "truncated envelope");
        fs::remove_dir_all(&dir).ok();
    }
}
