//! The write-ahead log proper: a versioned file header, length-prefixed
//! checksummed record frames, an append path, and a streaming reader that
//! classifies how a log ends.
//!
//! ## On-disk format
//!
//! ```text
//! header  := magic "RRPWALOG" (8 bytes) ‖ version u32-le      (12 bytes)
//! frame   := payload_len u32-le ‖ crc u32-le ‖ event_seq u64-le
//!            ‖ payload (payload_len bytes)
//! crc     := CRC-32(event_seq-bytes ‖ payload)
//! ```
//!
//! Event sequence numbers are assigned by the writer and strictly
//! monotone (+1 per record); the reader rejects any jump as corruption.
//! A log therefore ends one of three ways, reported by
//! [`WalReader::tail`]:
//!
//! * [`TailStatus::Clean`] — the last frame is complete and verified;
//! * [`TailStatus::TornWrite`] — the file stops mid-frame (the classic
//!   crash-during-append), and the partial frame is simply not part of
//!   the log;
//! * [`TailStatus::Corrupt`] — a complete frame failed its checksum (or
//!   decoded to nonsense); the log is valid strictly before it, and the
//!   reader counts how many whole frames follow so recovery can report
//!   the number of events lost.
//!
//! Appends go through the [`WalSink`] trait so tests can interpose
//! failures (see [`crate::fault`]); the production sink is a plain
//! unbuffered [`FileSink`]. Records are written with a single
//! `write_all`, so a crashed process leaves at worst one torn frame —
//! exactly the case the reader drops cleanly. Durability against *power*
//! loss additionally needs [`WalWriter::sync`], which the serving tier
//! calls at snapshot points.
//!
//! [`WalReader`] scans a *dead* log once and classifies its tail at EOF.
//! For a log another process is still appending to, [`WalTailReader`]
//! re-examines the tail on every [`poll_next_event`]
//! ([`WalTailReader::poll_next_event`]): an incomplete frame is
//! [`WalPoll::Pending`] ("more may arrive"), and only a *complete* frame
//! that fails verification — which no amount of further bytes can
//! repair — reads as corruption.

use crate::crc32::crc32_concat;
use crate::event::WalEvent;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The eight magic bytes opening every log file.
pub const WAL_MAGIC: [u8; 8] = *b"RRPWALOG";
/// The current format version, stored in the header.
pub const WAL_VERSION: u32 = 1;
/// Header length in bytes — also the valid length of an empty log.
pub const WAL_HEADER_LEN: u64 = 12;

/// Frame prefix: payload length + checksum + event sequence.
const FRAME_PREFIX: usize = 16;
/// Upper bound on a sane payload. Real payloads are ≤ 26 bytes; the cap
/// exists so a corrupted length prefix cannot demand a huge allocation.
const MAX_PAYLOAD: u32 = 1 << 20;

/// Everything that can go wrong talking to the log or a snapshot file.
#[derive(Debug)]
pub enum WalError {
    /// An I/O error from the filesystem (or an injected failpoint).
    Io(io::Error),
    /// The file does not open with a well-formed header.
    BadHeader {
        /// What exactly was wrong with it.
        detail: String,
    },
    /// The header is well-formed but a future format version.
    UnsupportedVersion {
        /// The version the header claims.
        found: u32,
    },
    /// Verified content that is structurally impossible (snapshot frames;
    /// record-level corruption is reported via [`TailStatus::Corrupt`]
    /// instead, because the log before it is still good).
    Corrupt {
        /// Byte offset of the first bad content.
        offset: u64,
        /// What exactly was wrong with it.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::BadHeader { detail } => write!(f, "bad wal header: {detail}"),
            WalError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wal format version {found} (max {WAL_VERSION})"
                )
            }
            WalError::Corrupt { offset, detail } => {
                write!(f, "corrupt content at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// How a fully scanned log ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// Every byte belongs to a verified record.
    Clean,
    /// The file stops mid-frame: a torn final write, dropped cleanly.
    TornWrite {
        /// Bytes of the partial frame past the last good record.
        dropped_bytes: u64,
    },
    /// A complete frame failed verification; the log is truncated there.
    Corrupt {
        /// Byte offset of the first bad frame.
        first_bad_offset: u64,
        /// Whole frames at or after the bad one (best-effort count by
        /// walking the surviving length prefixes) — the events lost.
        events_lost: u64,
        /// Total bytes past the last good record.
        dropped_bytes: u64,
    },
}

impl TailStatus {
    /// Events the tail cost, if any (zero for a clean or merely torn log).
    pub fn events_lost(&self) -> u64 {
        match *self {
            TailStatus::Corrupt { events_lost, .. } => events_lost,
            _ => 0,
        }
    }

    /// Bytes past the valid prefix, however they got there.
    pub fn dropped_bytes(&self) -> u64 {
        match *self {
            TailStatus::Clean => 0,
            TailStatus::TornWrite { dropped_bytes } | TailStatus::Corrupt { dropped_bytes, .. } => {
                dropped_bytes
            }
        }
    }
}

/// Where appended frames go. The indirection exists for the
/// fault-injection harness: production uses [`FileSink`], tests wrap it
/// in a [`crate::fault::FailpointSink`].
pub trait WalSink: Send {
    /// Append one complete frame (or the header) to the log.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Flush as far down the storage stack as the sink can reach.
    fn sync(&mut self) -> io::Result<()>;
}

/// The production sink: unbuffered appends to a [`File`], so a process
/// crash leaves at most one torn frame and never a buffered batch.
pub struct FileSink {
    file: File,
}

impl FileSink {
    /// Wrap a file already positioned at its append point.
    pub fn new(file: File) -> Self {
        FileSink { file }
    }
}

impl WalSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// Create a fresh log at `path` (truncating anything there) and return
/// the file positioned after the freshly written header.
pub fn create_log_file(path: &Path) -> Result<File, WalError> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)?;
    let mut header = [0u8; WAL_HEADER_LEN as usize];
    header[..8].copy_from_slice(&WAL_MAGIC);
    header[8..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    file.write_all(&header)?;
    Ok(file)
}

/// Reopen an existing log for appending after a scan: truncate to the
/// verified prefix `valid_len` (dropping any torn or corrupt tail) and
/// return the file positioned there.
pub fn resume_log_file(path: &Path, valid_len: u64) -> Result<File, WalError> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    file.set_len(valid_len)?;
    file.seek(SeekFrom::Start(valid_len))?;
    Ok(file)
}

/// The append path: frames events, checksums them, hands the bytes to
/// the sink, and assigns strictly monotone event sequence numbers.
pub struct WalWriter {
    sink: Box<dyn WalSink>,
    next_seq: u64,
    payload: Vec<u8>,
    frame: Vec<u8>,
}

impl WalWriter {
    /// A writer over `sink`, numbering its first event `next_seq`.
    pub fn new(sink: Box<dyn WalSink>, next_seq: u64) -> Self {
        WalWriter {
            sink,
            next_seq,
            payload: Vec::new(),
            frame: Vec::new(),
        }
    }

    /// The sequence number the next append will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one event; on success returns the sequence it was logged
    /// under. On failure nothing is accounted: the sequence counter is
    /// untouched, so the caller's state and the log cannot drift apart.
    pub fn append(&mut self, event: &WalEvent) -> Result<u64, WalError> {
        let seq = self.next_seq;
        self.payload.clear();
        event.encode_into(&mut self.payload);
        let seq_bytes = seq.to_le_bytes();
        let crc = crc32_concat(&[&seq_bytes, &self.payload]);
        self.frame.clear();
        self.frame
            .extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        self.frame.extend_from_slice(&crc.to_le_bytes());
        self.frame.extend_from_slice(&seq_bytes);
        self.frame.extend_from_slice(&self.payload);
        self.sink.append(&self.frame)?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Flush the sink (see [`WalSink::sync`]).
    pub fn sync(&mut self) -> Result<(), WalError> {
        Ok(self.sink.sync()?)
    }
}

/// The streaming read path: yields verified `(seq, event)` records one at
/// a time, then reports how the log ended and how much of it is valid.
pub struct WalReader<R> {
    src: R,
    /// Bytes of verified log: header plus every good frame so far.
    valid_len: u64,
    /// The sequence the next record must carry (unknown until the first).
    expect_seq: Option<u64>,
    tail: TailStatus,
    done: bool,
}

impl WalReader<BufReader<File>> {
    /// Open a log file, validating its header. A missing file is an
    /// ordinary [`WalError::Io`] with `NotFound`; a file too short to
    /// hold a header, or one with the wrong magic, is a
    /// [`WalError::BadHeader`].
    pub fn open(path: &Path) -> Result<Self, WalError> {
        Self::from_reader(BufReader::new(File::open(path)?))
    }
}

/// Validate the (possibly short) header bytes read from the front of a
/// log file — shared by the batch and tail readers.
fn validate_header(bytes: &[u8]) -> Result<(), WalError> {
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(WalError::BadHeader {
            detail: format!(
                "file holds {} bytes, header needs {WAL_HEADER_LEN}",
                bytes.len()
            ),
        });
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(WalError::BadHeader {
            detail: "magic mismatch".to_string(),
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(WalError::UnsupportedVersion { found: version });
    }
    Ok(())
}

impl<R: Read> WalReader<R> {
    /// Wrap any byte source, validating the header first.
    pub fn from_reader(mut src: R) -> Result<Self, WalError> {
        let mut header = [0u8; WAL_HEADER_LEN as usize];
        let got = read_up_to(&mut src, &mut header)?;
        validate_header(&header[..got])?;
        Ok(WalReader {
            src,
            valid_len: WAL_HEADER_LEN,
            expect_seq: None,
            tail: TailStatus::Clean,
            done: false,
        })
    }

    /// The next verified record, or `None` once the log ends (cleanly or
    /// not — ask [`tail`](Self::tail) which). `Err` is reserved for real
    /// I/O failures from the underlying source.
    pub fn next_event(&mut self) -> Result<Option<(u64, WalEvent)>, WalError> {
        if self.done {
            return Ok(None);
        }
        let mut prefix = [0u8; FRAME_PREFIX];
        let got = read_up_to(&mut self.src, &mut prefix)?;
        if got == 0 {
            self.done = true;
            return Ok(None);
        }
        if got < FRAME_PREFIX {
            return self.finish_torn(got as u64);
        }
        let payload_len = u32::from_le_bytes(prefix[0..4].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(prefix[4..8].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(prefix[8..16].try_into().expect("8 bytes"));
        if payload_len > MAX_PAYLOAD {
            // The claimed length is garbage, so this frame's true extent
            // is unknowable and only its 16 prefix bytes were consumed —
            // the loss-counting walk would start inside the unread
            // payload and reinterpret its bytes as frame prefixes. Drop
            // the rest uncounted instead.
            return self.finish_corrupt_unframed(FRAME_PREFIX as u64, "absurd payload length");
        }
        let mut payload = vec![0u8; payload_len as usize];
        let got = read_up_to(&mut self.src, &mut payload)?;
        if got < payload.len() {
            return self.finish_torn((FRAME_PREFIX + got) as u64);
        }
        let frame_len = (FRAME_PREFIX as u64) + payload_len as u64;
        if crc32_concat(&[&prefix[8..16], &payload]) != stored_crc {
            return self.finish_corrupt(frame_len, "checksum mismatch");
        }
        if let Some(expected) = self.expect_seq {
            if seq != expected {
                return self.finish_corrupt(frame_len, "sequence discontinuity");
            }
        }
        let Some(event) = WalEvent::decode(&payload) else {
            return self.finish_corrupt(frame_len, "undecodable event payload");
        };
        self.valid_len += frame_len;
        self.expect_seq = Some(seq + 1);
        Ok(Some((seq, event)))
    }

    /// Byte length of the verified prefix — what the file should be
    /// truncated to before appending resumes.
    pub fn valid_len(&self) -> u64 {
        self.valid_len
    }

    /// How the log ended. Meaningful once [`next_event`](Self::next_event)
    /// has returned `None`.
    pub fn tail(&self) -> TailStatus {
        self.tail
    }

    /// The sequence number one past the last verified record, if any
    /// record was read at all.
    pub fn next_seq(&self) -> Option<u64> {
        self.expect_seq
    }

    /// A torn final write: `extra` bytes of partial frame, then EOF.
    fn finish_torn(&mut self, extra: u64) -> Result<Option<(u64, WalEvent)>, WalError> {
        self.done = true;
        self.tail = TailStatus::TornWrite {
            dropped_bytes: extra,
        };
        Ok(None)
    }

    /// A frame whose own length prefix cannot be trusted: the stream
    /// position is `prefix_bytes` into the bad frame and no boundary
    /// after it is knowable, so the remaining bytes are drained and
    /// counted as dropped while the loss count stays at its floor of 1
    /// (the bad frame itself).
    fn finish_corrupt_unframed(
        &mut self,
        prefix_bytes: u64,
        detail: &str,
    ) -> Result<Option<(u64, WalEvent)>, WalError> {
        let _ = detail; // classification only; the status carries the counts
        self.done = true;
        let dropped = prefix_bytes + drain(&mut self.src)?;
        self.tail = TailStatus::Corrupt {
            first_bad_offset: self.valid_len,
            events_lost: 1,
            dropped_bytes: dropped,
        };
        Ok(None)
    }

    /// A complete frame failed verification `bad_frame_len` bytes into
    /// the tail (the whole frame, prefix and payload, has been consumed,
    /// so the stream sits on the next frame boundary). Count the whole
    /// frames from here to EOF (the bad one included) by walking length
    /// prefixes — best effort: if a *later* length prefix was damaged the
    /// walk desynchronises, so the count is a floor, never a panic.
    fn finish_corrupt(
        &mut self,
        bad_frame_len: u64,
        detail: &str,
    ) -> Result<Option<(u64, WalEvent)>, WalError> {
        let _ = detail; // classification only; the status carries the counts
        self.done = true;
        let mut events_lost = 1u64; // the frame that failed verification
        let mut dropped = bad_frame_len;
        loop {
            let mut prefix = [0u8; FRAME_PREFIX];
            let got = read_up_to(&mut self.src, &mut prefix)?;
            dropped += got as u64;
            if got < FRAME_PREFIX {
                break;
            }
            let payload_len = u32::from_le_bytes(prefix[0..4].try_into().expect("4 bytes"));
            if payload_len > MAX_PAYLOAD {
                // The walk lost framing; swallow the rest uncounted.
                dropped += drain(&mut self.src)?;
                break;
            }
            let mut payload = vec![0u8; payload_len as usize];
            let got = read_up_to(&mut self.src, &mut payload)?;
            dropped += got as u64;
            if got < payload.len() {
                break;
            }
            events_lost += 1;
        }
        self.tail = TailStatus::Corrupt {
            first_bad_offset: self.valid_len,
            events_lost,
            dropped_bytes: dropped,
        };
        Ok(None)
    }
}

/// One observation of a live log's tail, from
/// [`WalTailReader::poll_next_event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalPoll {
    /// The next verified record.
    Event {
        /// The sequence number the record was logged under.
        seq: u64,
        /// The decoded event.
        event: WalEvent,
    },
    /// Clean end of the visible log: every byte so far belongs to a
    /// verified record and whatever follows (nothing, or a partial
    /// frame) is still incomplete. On a live log more bytes may arrive —
    /// poll again; on a quiesced one this is exactly a clean or torn
    /// tail.
    Pending,
}

/// A resumable reader for *live* logs: where [`WalReader`] scans a dead
/// file once and classifies its tail at EOF, `WalTailReader` keeps the
/// file open and re-examines the tail on every poll, so a follower can
/// apply events while a writer is still appending to the same file.
///
/// The classification rules shift accordingly. Frames are appended with
/// a single `write_all`, so a concurrently visible partial frame is
/// always a byte-prefix of what the writer is putting there — an
/// **incomplete** frame means "in flight, come back later"
/// ([`WalPoll::Pending`]), never corruption. A **complete** frame that
/// fails verification (absurd length, checksum mismatch, sequence
/// discontinuity, undecodable payload) can never be repaired by more
/// bytes, so it poisons the reader: that poll and every poll after it
/// return the same [`WalError::Corrupt`]. A follower stuck there must
/// re-bootstrap — typically after the log's owner has itself recovered
/// and truncated the bad tail.
pub struct WalTailReader {
    file: File,
    /// Bytes of verified log consumed so far: header plus every frame
    /// yielded as an event. Each poll re-reads from here.
    valid_len: u64,
    expect_seq: Option<u64>,
    payload: Vec<u8>,
    /// Set once a complete frame fails verification: `(offset, detail)`
    /// of the permanently bad tail.
    poisoned: Option<(u64, String)>,
}

impl WalTailReader {
    /// Open a log file for tailing, validating its header. A file still
    /// too short to hold its header reads as [`WalError::BadHeader`] —
    /// if the log is being created concurrently, retry the open.
    pub fn open(path: &Path) -> Result<Self, WalError> {
        let mut file = File::open(path)?;
        let mut header = [0u8; WAL_HEADER_LEN as usize];
        let got = read_up_to(&mut file, &mut header)?;
        validate_header(&header[..got])?;
        Ok(WalTailReader {
            file,
            valid_len: WAL_HEADER_LEN,
            expect_seq: None,
            payload: Vec::new(),
            poisoned: None,
        })
    }

    /// The next verified record if one is fully visible, or
    /// [`WalPoll::Pending`] at the (current) end of the log. A complete
    /// frame that fails verification is sticky: this and every later
    /// poll return the same [`WalError::Corrupt`].
    pub fn poll_next_event(&mut self) -> Result<WalPoll, WalError> {
        if let Some((offset, detail)) = &self.poisoned {
            return Err(WalError::Corrupt {
                offset: *offset,
                detail: detail.clone(),
            });
        }
        self.file.seek(SeekFrom::Start(self.valid_len))?;
        let mut prefix = [0u8; FRAME_PREFIX];
        let got = read_up_to(&mut self.file, &mut prefix)?;
        if got < FRAME_PREFIX {
            return Ok(WalPoll::Pending);
        }
        let payload_len = u32::from_le_bytes(prefix[0..4].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(prefix[4..8].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(prefix[8..16].try_into().expect("8 bytes"));
        if payload_len > MAX_PAYLOAD {
            // Real payloads are tiny; no further bytes can shrink the
            // claimed length back into range.
            return self.poison("absurd payload length");
        }
        self.payload.resize(payload_len as usize, 0);
        let got = read_up_to(&mut self.file, &mut self.payload)?;
        if got < self.payload.len() {
            return Ok(WalPoll::Pending);
        }
        if crc32_concat(&[&prefix[8..16], &self.payload]) != stored_crc {
            return self.poison("checksum mismatch");
        }
        if let Some(expected) = self.expect_seq {
            if seq != expected {
                return self.poison("sequence discontinuity");
            }
        }
        let Some(event) = WalEvent::decode(&self.payload) else {
            return self.poison("undecodable event payload");
        };
        self.valid_len += (FRAME_PREFIX as u64) + payload_len as u64;
        self.expect_seq = Some(seq + 1);
        Ok(WalPoll::Event { seq, event })
    }

    /// Byte length of the verified prefix consumed so far.
    pub fn valid_len(&self) -> u64 {
        self.valid_len
    }

    /// The sequence number one past the last verified record, if any
    /// record was read at all.
    pub fn next_seq(&self) -> Option<u64> {
        self.expect_seq
    }

    /// Mark the tail permanently bad at the current verified offset.
    fn poison(&mut self, detail: &str) -> Result<WalPoll, WalError> {
        self.poisoned = Some((self.valid_len, detail.to_string()));
        Err(WalError::Corrupt {
            offset: self.valid_len,
            detail: detail.to_string(),
        })
    }
}

/// Read until `buf` is full or EOF; returns how many bytes landed.
fn read_up_to<R: Read>(src: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match src.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Consume a source to EOF, returning how many bytes were discarded.
fn drain<R: Read>(src: &mut R) -> io::Result<u64> {
    let mut sink = [0u8; 512];
    let mut total = 0u64;
    loop {
        match src.read(&mut sink) {
            Ok(0) => return Ok(total),
            Ok(n) => total += n as u64,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_core::Document;
    use std::io::Cursor;
    use std::sync::{Arc, Mutex};

    /// An in-memory sink shared with the test so it can replay the bytes.
    #[derive(Clone, Default)]
    struct MemSink(Arc<Mutex<Vec<u8>>>);

    impl MemSink {
        fn bytes(&self) -> Vec<u8> {
            self.0.lock().unwrap().clone()
        }
    }

    impl WalSink for MemSink {
        fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.0.lock().unwrap().extend_from_slice(bytes);
            Ok(())
        }

        fn sync(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn header_bytes() -> Vec<u8> {
        let mut out = WAL_MAGIC.to_vec();
        out.extend_from_slice(&WAL_VERSION.to_le_bytes());
        out
    }

    fn sample_events() -> Vec<WalEvent> {
        vec![
            WalEvent::Insert(Document::unexplored(1)),
            WalEvent::Insert(Document::established(2, 0.75).with_age(10)),
            WalEvent::Visit { seq: 0 },
            WalEvent::SetPopularity {
                seq: 1,
                popularity: 0.1,
            },
            WalEvent::Visit { seq: 1 },
        ]
    }

    /// Header + the sample events, as raw log bytes.
    fn sample_log() -> Vec<u8> {
        let sink = MemSink::default();
        let mut bytes = header_bytes();
        let mut writer = WalWriter::new(Box::new(sink.clone()), 0);
        for event in sample_events() {
            writer.append(&event).unwrap();
        }
        bytes.extend_from_slice(&sink.bytes());
        bytes
    }

    fn scan(bytes: &[u8]) -> (Vec<(u64, WalEvent)>, TailStatus, u64) {
        let mut reader = WalReader::from_reader(Cursor::new(bytes)).unwrap();
        let mut events = Vec::new();
        while let Some(record) = reader.next_event().unwrap() {
            events.push(record);
        }
        (events, reader.tail(), reader.valid_len())
    }

    #[test]
    fn append_then_scan_round_trips() {
        let bytes = sample_log();
        let (events, tail, valid) = scan(&bytes);
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(valid, bytes.len() as u64);
        assert_eq!(
            events,
            sample_events()
                .into_iter()
                .enumerate()
                .map(|(i, e)| (i as u64, e))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn truncation_at_every_offset_is_torn_or_shorter_clean() {
        let bytes = sample_log();
        let full = scan(&bytes).0;
        for cut in 0..bytes.len() {
            if cut < WAL_HEADER_LEN as usize {
                // Mid-header cuts (including a zero-byte file) cannot be
                // scanned at all: a typed header error, never a panic and
                // never a misread.
                assert!(
                    matches!(
                        WalReader::from_reader(Cursor::new(&bytes[..cut])),
                        Err(WalError::BadHeader { .. })
                    ),
                    "cut at {cut}"
                );
                continue;
            }
            let (events, tail, valid) = scan(&bytes[..cut]);
            assert!(valid <= cut as u64);
            // Whatever survives is a prefix of the uncut log.
            assert_eq!(events[..], full[..events.len()], "cut at {cut}");
            match tail {
                TailStatus::Clean => assert_eq!(valid, cut as u64),
                TailStatus::TornWrite { dropped_bytes } => {
                    assert_eq!(valid + dropped_bytes, cut as u64)
                }
                TailStatus::Corrupt { .. } => panic!("truncation can never look corrupt"),
            }
        }
    }

    #[test]
    fn a_log_cut_at_exactly_header_length_is_clean_and_empty() {
        // The boundary case between "bad header" and "torn frame": a file
        // holding exactly its header is a *valid empty log*.
        let (events, tail, valid) = scan(&header_bytes());
        assert!(events.is_empty());
        assert_eq!(tail, TailStatus::Clean);
        assert_eq!(valid, WAL_HEADER_LEN);
    }

    #[test]
    fn a_flipped_payload_byte_truncates_at_that_record_and_counts_losses() {
        let bytes = sample_log();
        let full = scan(&bytes).0;
        // Flip one byte inside every record (skip each frame's length
        // prefix so the loss count stays exact; a damaged length prefix
        // is covered separately below).
        let mut offset = WAL_HEADER_LEN as usize;
        for (index, (_, event)) in full.iter().enumerate() {
            let mut payload = Vec::new();
            event.encode_into(&mut payload);
            let frame_len = FRAME_PREFIX + payload.len();
            let mut copy = bytes.clone();
            copy[offset + FRAME_PREFIX] ^= 0x40; // first payload byte
            let (events, tail, valid) = scan(&copy);
            assert_eq!(events[..], full[..index], "record {index}");
            assert_eq!(valid as usize, offset);
            assert_eq!(
                tail,
                TailStatus::Corrupt {
                    first_bad_offset: offset as u64,
                    events_lost: (full.len() - index) as u64,
                    dropped_bytes: (bytes.len() - offset) as u64,
                },
                "record {index}"
            );
            offset += frame_len;
        }
    }

    #[test]
    fn a_damaged_length_prefix_still_reports_at_least_one_loss() {
        // Nudge the first frame's length by one: the checksum is computed
        // over the wrong span, so the frame reads as corrupt and the
        // loss-counting walk (now desynchronised) still reports a floor.
        let mut bytes = sample_log();
        let offset = WAL_HEADER_LEN as usize;
        bytes[offset] ^= 0x01;
        let (events, tail, valid) = scan(&bytes);
        assert!(events.is_empty());
        assert_eq!(valid, WAL_HEADER_LEN);
        match tail {
            TailStatus::Corrupt {
                first_bad_offset,
                events_lost,
                dropped_bytes,
            } => {
                assert_eq!(first_bad_offset, WAL_HEADER_LEN);
                assert!(events_lost >= 1);
                assert_eq!(dropped_bytes, bytes.len() as u64 - WAL_HEADER_LEN);
            }
            other => panic!("expected corrupt tail, got {other:?}"),
        }
    }

    #[test]
    fn a_length_prefix_inflated_past_eof_reads_as_torn() {
        // If the damaged length claims more bytes than the file holds,
        // the frame is indistinguishable from a torn final write — and
        // is dropped the same way, with everything after it.
        let mut bytes = sample_log();
        let offset = WAL_HEADER_LEN as usize;
        bytes[offset] ^= 0xFF; // 26 → 229 payload bytes, past EOF
        let (events, tail, valid) = scan(&bytes);
        assert!(events.is_empty());
        assert_eq!(valid, WAL_HEADER_LEN);
        assert_eq!(
            tail,
            TailStatus::TornWrite {
                dropped_bytes: bytes.len() as u64 - WAL_HEADER_LEN
            }
        );
    }

    #[test]
    fn an_absurd_length_prefix_drops_the_tail_with_exact_counts() {
        // Regression: a length prefix past MAX_PAYLOAD used to enter the
        // frame-walking loss count with only 16 prefix bytes consumed, so
        // the walk started inside the unread payload and reinterpreted
        // payload bytes as frame prefixes — garbage event counts. Pinned
        // exactly, at every frame offset: one event lost (the bad frame,
        // whose extent is unknowable), and dropped bytes spanning from the
        // valid prefix to EOF.
        let bytes = sample_log();
        let full = scan(&bytes).0;
        let mut offset = WAL_HEADER_LEN as usize;
        for (index, (_, event)) in full.iter().enumerate() {
            let mut payload = Vec::new();
            event.encode_into(&mut payload);
            let frame_len = FRAME_PREFIX + payload.len();
            let mut copy = bytes.clone();
            copy[offset..offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            let (events, tail, valid) = scan(&copy);
            assert_eq!(events[..], full[..index], "record {index}");
            assert_eq!(valid as usize, offset, "record {index}");
            assert_eq!(
                tail,
                TailStatus::Corrupt {
                    first_bad_offset: offset as u64,
                    events_lost: 1,
                    dropped_bytes: (bytes.len() - offset) as u64,
                },
                "record {index}"
            );
            offset += frame_len;
        }
    }

    #[test]
    fn an_absurd_length_prefix_at_eof_still_counts_one_loss() {
        // The degenerate variant: the absurd frame's prefix is the last
        // thing in the file. Nothing to drain, still exactly one loss.
        let bytes = sample_log();
        let offset = WAL_HEADER_LEN as usize;
        let mut copy = bytes[..offset + FRAME_PREFIX].to_vec();
        copy[offset..offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let (events, tail, valid) = scan(&copy);
        assert!(events.is_empty());
        assert_eq!(valid, WAL_HEADER_LEN);
        assert_eq!(
            tail,
            TailStatus::Corrupt {
                first_bad_offset: WAL_HEADER_LEN,
                events_lost: 1,
                dropped_bytes: FRAME_PREFIX as u64,
            }
        );
    }

    #[test]
    fn sequence_discontinuities_read_as_corruption() {
        let sink = MemSink::default();
        let mut writer = WalWriter::new(Box::new(sink.clone()), 0);
        writer.append(&WalEvent::Visit { seq: 0 }).unwrap();
        drop(writer);
        // A second writer resuming at the wrong sequence.
        let mut writer = WalWriter::new(Box::new(sink.clone()), 5);
        writer.append(&WalEvent::Visit { seq: 1 }).unwrap();
        let mut bytes = header_bytes();
        bytes.extend_from_slice(&sink.bytes());
        let (events, tail, _) = scan(&bytes);
        assert_eq!(events.len(), 1);
        assert!(matches!(tail, TailStatus::Corrupt { events_lost: 1, .. }));
    }

    #[test]
    fn bad_headers_are_typed_errors() {
        let short = WAL_MAGIC[..4].to_vec();
        assert!(matches!(
            WalReader::from_reader(Cursor::new(short)),
            Err(WalError::BadHeader { .. })
        ));
        let mut wrong_magic = header_bytes();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(
            WalReader::from_reader(Cursor::new(wrong_magic)),
            Err(WalError::BadHeader { .. })
        ));
        let mut future = WAL_MAGIC.to_vec();
        future.extend_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            WalReader::from_reader(Cursor::new(future)),
            Err(WalError::UnsupportedVersion { found: 99 })
        ));
    }

    /// Byte offsets of every frame boundary in `sample_log`: the header
    /// end first, then the end of each frame.
    fn sample_frame_boundaries() -> Vec<usize> {
        let mut offsets = vec![WAL_HEADER_LEN as usize];
        for event in sample_events() {
            let mut payload = Vec::new();
            event.encode_into(&mut payload);
            offsets.push(offsets.last().unwrap() + FRAME_PREFIX + payload.len());
        }
        offsets
    }

    /// A structurally complete frame carrying `seq` and a zero-length
    /// payload: valid length prefix, valid CRC (over the sequence bytes
    /// alone — the payload contributes nothing), undecodable content.
    fn empty_payload_frame(seq: u64) -> Vec<u8> {
        let seq_bytes = seq.to_le_bytes();
        let mut frame = Vec::with_capacity(FRAME_PREFIX);
        frame.extend_from_slice(&0u32.to_le_bytes());
        frame.extend_from_slice(&crc32_concat(&[&seq_bytes]).to_le_bytes());
        frame.extend_from_slice(&seq_bytes);
        frame
    }

    /// `sample_log` plus one empty-payload frame at the end, and the
    /// byte offset where that frame starts.
    fn log_with_empty_payload_final_frame() -> (Vec<u8>, usize) {
        let mut bytes = sample_log();
        let boundary = bytes.len();
        bytes.extend_from_slice(&empty_payload_frame(sample_events().len() as u64));
        (bytes, boundary)
    }

    #[test]
    fn an_empty_payload_final_frame_is_corrupt_with_exact_counts() {
        // An empty payload passes the length and checksum gates but
        // decodes to no event: a *complete* frame that fails
        // verification, so the tail is corrupt — exactly one event lost,
        // exactly the frame's sixteen prefix bytes dropped.
        let (bytes, boundary) = log_with_empty_payload_final_frame();
        let full = scan(&bytes[..boundary]).0;
        let (events, tail, valid) = scan(&bytes);
        assert_eq!(events, full);
        assert_eq!(valid as usize, boundary);
        assert_eq!(
            tail,
            TailStatus::Corrupt {
                first_bad_offset: boundary as u64,
                events_lost: 1,
                dropped_bytes: FRAME_PREFIX as u64,
            }
        );
    }

    #[test]
    fn every_cut_of_a_log_ending_in_an_empty_payload_frame_classifies_exactly() {
        // Sweep *every* cut point, from the empty file through the
        // complete log: mid-header cuts are typed header errors, interior
        // cuts are clean or torn, partial prefixes of the empty-payload
        // frame are torn (indistinguishable from any in-flight append),
        // and only the complete frame reads as corrupt.
        let (bytes, boundary) = log_with_empty_payload_final_frame();
        let full = scan(&bytes[..boundary]).0;
        for cut in 0..=bytes.len() {
            if cut < WAL_HEADER_LEN as usize {
                assert!(
                    matches!(
                        WalReader::from_reader(Cursor::new(&bytes[..cut])),
                        Err(WalError::BadHeader { .. })
                    ),
                    "cut at {cut}"
                );
                continue;
            }
            let (events, tail, valid) = scan(&bytes[..cut]);
            assert_eq!(events[..], full[..events.len()], "cut at {cut}");
            if cut == bytes.len() {
                assert_eq!(events.len(), full.len());
                assert_eq!(valid as usize, boundary, "cut at {cut}");
                assert_eq!(
                    tail,
                    TailStatus::Corrupt {
                        first_bad_offset: boundary as u64,
                        events_lost: 1,
                        dropped_bytes: FRAME_PREFIX as u64,
                    },
                    "cut at {cut}"
                );
            } else if cut > boundary {
                assert_eq!(events.len(), full.len());
                assert_eq!(valid as usize, boundary, "cut at {cut}");
                assert_eq!(
                    tail,
                    TailStatus::TornWrite {
                        dropped_bytes: (cut - boundary) as u64
                    },
                    "cut at {cut}"
                );
            } else {
                match tail {
                    TailStatus::Clean => assert_eq!(valid, cut as u64, "cut at {cut}"),
                    TailStatus::TornWrite { dropped_bytes } => {
                        assert_eq!(valid + dropped_bytes, cut as u64, "cut at {cut}")
                    }
                    TailStatus::Corrupt { .. } => {
                        panic!("truncation can never look corrupt (cut {cut})")
                    }
                }
            }
        }
    }

    #[test]
    fn an_empty_payload_frame_mid_log_counts_every_following_frame_lost() {
        // Spliced between real frames, the empty-payload frame is the
        // first bad record and the loss walk resynchronises on the intact
        // frames after it: every one of them counts as lost.
        let bytes = sample_log();
        let full = scan(&bytes).0;
        let bounds = sample_frame_boundaries();
        let splice = bounds[1]; // after the first record
        let mut copy = bytes[..splice].to_vec();
        copy.extend_from_slice(&empty_payload_frame(1));
        copy.extend_from_slice(&bytes[splice..]);
        let (events, tail, valid) = scan(&copy);
        assert_eq!(events[..], full[..1]);
        assert_eq!(valid as usize, splice);
        assert_eq!(
            tail,
            TailStatus::Corrupt {
                first_bad_offset: splice as u64,
                events_lost: full.len() as u64, // the empty frame + the 4 after it
                dropped_bytes: (copy.len() - splice) as u64,
            }
        );
    }

    fn tail_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rrp-wal-tail-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tail_reader_yields_events_only_as_frames_complete() {
        // Grow the file one byte at a time, polling after every byte —
        // the strictest version of "the replica polls while the leader is
        // appending". Exactly the fully visible frames are yielded, never
        // an error, never a partial read.
        let dir = tail_dir("incremental");
        let path = dir.join("wal.log");
        let bytes = sample_log();
        let bounds = sample_frame_boundaries();
        std::fs::write(&path, &bytes[..WAL_HEADER_LEN as usize]).unwrap();
        let mut tail = WalTailReader::open(&path).unwrap();
        assert_eq!(tail.poll_next_event().unwrap(), WalPoll::Pending);

        let full = scan(&bytes).0;
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        let mut seen = Vec::new();
        for grow in WAL_HEADER_LEN as usize + 1..=bytes.len() {
            file.write_all(&bytes[grow - 1..grow]).unwrap();
            while let WalPoll::Event { seq, event } = tail.poll_next_event().unwrap() {
                seen.push((seq, event));
            }
            let complete = *bounds.iter().rfind(|&&b| b <= grow).unwrap();
            assert_eq!(tail.valid_len(), complete as u64, "grew to {grow}");
            let visible = bounds
                .iter()
                .filter(|&&b| b > WAL_HEADER_LEN as usize && b <= grow);
            assert_eq!(seen.len(), visible.count(), "grew to {grow}");
        }
        assert_eq!(seen, full);
        assert_eq!(tail.next_seq(), Some(full.len() as u64));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_reader_poisons_on_a_complete_invalid_frame() {
        let dir = tail_dir("poison");
        let path = dir.join("wal.log");
        let (bytes, boundary) = log_with_empty_payload_final_frame();
        // Everything but the bad frame's last byte: the frame is still
        // incomplete, so the tail is merely pending.
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let mut tail = WalTailReader::open(&path).unwrap();
        let mut events = 0;
        while let WalPoll::Event { .. } = tail.poll_next_event().unwrap() {
            events += 1;
        }
        assert_eq!(events, sample_events().len());

        // The frame completes: sticky corruption at the frame's offset,
        // on this poll and every poll after it.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&bytes[bytes.len() - 1..]).unwrap();
        for _ in 0..3 {
            match tail.poll_next_event() {
                Err(WalError::Corrupt { offset, .. }) => assert_eq!(offset, boundary as u64),
                other => panic!("expected sticky corruption, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_reader_poisons_on_sequence_discontinuity() {
        let dir = tail_dir("seq-gap");
        let path = dir.join("wal.log");
        let sink = MemSink::default();
        let mut writer = WalWriter::new(Box::new(sink.clone()), 0);
        writer.append(&WalEvent::Visit { seq: 0 }).unwrap();
        drop(writer);
        let mut writer = WalWriter::new(Box::new(sink.clone()), 5);
        writer.append(&WalEvent::Visit { seq: 1 }).unwrap();
        let mut bytes = header_bytes();
        bytes.extend_from_slice(&sink.bytes());
        std::fs::write(&path, &bytes).unwrap();

        let mut tail = WalTailReader::open(&path).unwrap();
        assert!(matches!(
            tail.poll_next_event().unwrap(),
            WalPoll::Event { seq: 0, .. }
        ));
        assert!(matches!(
            tail.poll_next_event(),
            Err(WalError::Corrupt { .. })
        ));
        assert!(matches!(
            tail.poll_next_event(),
            Err(WalError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_reader_open_rejects_a_partial_header_until_it_completes() {
        let dir = tail_dir("header");
        let path = dir.join("wal.log");
        std::fs::write(&path, &header_bytes()[..7]).unwrap();
        assert!(matches!(
            WalTailReader::open(&path),
            Err(WalError::BadHeader { .. })
        ));
        // The concurrent creator finishes the header: the retry works.
        std::fs::write(&path, header_bytes()).unwrap();
        let mut tail = WalTailReader::open(&path).unwrap();
        assert_eq!(tail.poll_next_event().unwrap(), WalPoll::Pending);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_round_trip_create_resume_append() {
        let dir = std::env::temp_dir().join(format!(
            "rrp-wal-log-file-round-trip-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");

        let file = create_log_file(&path).unwrap();
        let mut writer = WalWriter::new(Box::new(FileSink::new(file)), 0);
        writer.append(&WalEvent::Visit { seq: 3 }).unwrap();
        writer.sync().unwrap();
        drop(writer);

        let mut reader = WalReader::open(&path).unwrap();
        assert!(matches!(
            reader.next_event().unwrap(),
            Some((0, WalEvent::Visit { seq: 3 }))
        ));
        assert!(reader.next_event().unwrap().is_none());
        assert_eq!(reader.tail(), TailStatus::Clean);
        let (valid, next) = (reader.valid_len(), reader.next_seq().unwrap());

        // Resume where the scan left off and append one more record.
        let file = resume_log_file(&path, valid).unwrap();
        let mut writer = WalWriter::new(Box::new(FileSink::new(file)), next);
        assert_eq!(writer.append(&WalEvent::Visit { seq: 4 }).unwrap(), 1);
        drop(writer);

        let mut reader = WalReader::open(&path).unwrap();
        let mut seqs = Vec::new();
        while let Some((seq, _)) = reader.next_event().unwrap() {
            seqs.push(seq);
        }
        assert_eq!(seqs, [0, 1]);
        assert_eq!(reader.tail(), TailStatus::Clean);

        std::fs::remove_dir_all(&dir).ok();
    }
}
