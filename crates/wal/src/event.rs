//! The tagged event vocabulary of the mutation log and its fixed binary
//! codec.
//!
//! Exactly the three serving-tier mutations exist as events — insert a
//! document, record a visit, replace a popularity score — because those
//! are the only operations that change serving state. Every field is
//! encoded little-endian at a fixed offset; floats travel as their IEEE
//! bit patterns (`f64::to_bits`), so replaying an event reproduces the
//! *bit-identical* value that was applied live, with no text round-trip
//! in between.

use rrp_core::Document;

const TAG_INSERT: u8 = 0;
const TAG_VISIT: u8 = 1;
const TAG_SET_POPULARITY: u8 = 2;

/// One logged mutation, in the order the service applied it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalEvent {
    /// A document was appended to the store (sequence = insertion order).
    Insert(Document),
    /// A user visit was recorded against store sequence `seq`.
    Visit {
        /// The store sequence the visit targeted.
        seq: u64,
    },
    /// The popularity score of store sequence `seq` was replaced.
    SetPopularity {
        /// The store sequence the update targeted.
        seq: u64,
        /// The replacement score, exact to the bit.
        popularity: f64,
    },
}

impl WalEvent {
    /// Append this event's payload bytes (tag + fields) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            WalEvent::Insert(doc) => {
                out.push(TAG_INSERT);
                out.extend_from_slice(&doc.id.to_le_bytes());
                out.extend_from_slice(&doc.popularity.to_bits().to_le_bytes());
                out.push(doc.is_unexplored as u8);
                out.extend_from_slice(&doc.age_days.to_le_bytes());
            }
            WalEvent::Visit { seq } => {
                out.push(TAG_VISIT);
                out.extend_from_slice(&seq.to_le_bytes());
            }
            WalEvent::SetPopularity { seq, popularity } => {
                out.push(TAG_SET_POPULARITY);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&popularity.to_bits().to_le_bytes());
            }
        }
    }

    /// Decode one payload. `None` means the bytes are not a well-formed
    /// event (unknown tag, wrong length, non-boolean flag) — the reader
    /// treats that exactly like a checksum failure.
    pub fn decode(payload: &[u8]) -> Option<WalEvent> {
        let (&tag, rest) = payload.split_first()?;
        match tag {
            TAG_INSERT => {
                if rest.len() != 25 {
                    return None;
                }
                let flag = rest[16];
                if flag > 1 {
                    return None;
                }
                Some(WalEvent::Insert(Document {
                    id: read_u64(&rest[0..8]),
                    popularity: f64::from_bits(read_u64(&rest[8..16])),
                    is_unexplored: flag == 1,
                    age_days: read_u64(&rest[17..25]),
                }))
            }
            TAG_VISIT => {
                if rest.len() != 8 {
                    return None;
                }
                Some(WalEvent::Visit {
                    seq: read_u64(rest),
                })
            }
            TAG_SET_POPULARITY => {
                if rest.len() != 16 {
                    return None;
                }
                Some(WalEvent::SetPopularity {
                    seq: read_u64(&rest[0..8]),
                    popularity: f64::from_bits(read_u64(&rest[8..16])),
                })
            }
            _ => None,
        }
    }
}

fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("caller sliced exactly 8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(event: WalEvent) {
        let mut buf = Vec::new();
        event.encode_into(&mut buf);
        assert_eq!(WalEvent::decode(&buf), Some(event), "{event:?}");
    }

    #[test]
    fn every_event_round_trips_bit_exactly() {
        round_trip(WalEvent::Insert(Document::unexplored(42)));
        round_trip(WalEvent::Insert(
            Document::established(7, 0.1 + 0.2).with_age(365),
        ));
        round_trip(WalEvent::Insert(Document::established(
            u64::MAX,
            f64::MIN_POSITIVE,
        )));
        round_trip(WalEvent::Visit { seq: 0 });
        round_trip(WalEvent::Visit { seq: u64::MAX });
        round_trip(WalEvent::SetPopularity {
            seq: 3,
            popularity: 1.0 / 3.0,
        });
    }

    #[test]
    fn popularity_travels_as_exact_bits() {
        // A value with no short decimal form: the codec must not lose the
        // trailing bits a text round-trip could.
        let awkward = f64::from_bits(0x3FB9_9999_9999_999A); // 0.1
        let mut buf = Vec::new();
        WalEvent::SetPopularity {
            seq: 1,
            popularity: awkward,
        }
        .encode_into(&mut buf);
        match WalEvent::decode(&buf) {
            Some(WalEvent::SetPopularity { popularity, .. }) => {
                assert_eq!(popularity.to_bits(), awkward.to_bits());
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        assert_eq!(WalEvent::decode(&[]), None);
        assert_eq!(WalEvent::decode(&[9]), None); // unknown tag
        assert_eq!(WalEvent::decode(&[TAG_VISIT, 1, 2]), None); // short
        let mut buf = Vec::new();
        WalEvent::Insert(Document::unexplored(1)).encode_into(&mut buf);
        buf[17] = 2; // non-boolean unexplored flag
        assert_eq!(WalEvent::decode(&buf), None);
        buf.push(0); // trailing garbage
        buf[17] = 1;
        assert_eq!(WalEvent::decode(&buf), None);
    }
}
