//! Durable mutation log for the serving tier: a checksummed write-ahead
//! log, atomic snapshots, and a fault-injection harness.
//!
//! The serving tier's three mutations (insert / visit / popularity
//! update) are already an event stream; this crate makes that stream
//! durable. [`WalWriter`] appends [`WalEvent`]s as length-prefixed,
//! CRC-32-checksummed frames under a versioned header; [`WalReader`]
//! streams them back and classifies how the log ends ([`TailStatus`]):
//! a torn final write is dropped cleanly, a checksum failure truncates
//! the log at the first bad record and reports how many events were
//! lost. [`snapshot`] wraps serialized serving state in a checksummed
//! envelope written via atomic rename, so recovery is snapshot + tail
//! replay rather than full-history replay. [`fault`] injects the three
//! failures that matter — truncation, bit rot, append-time I/O errors —
//! so the recovery path is tested against them, not just described.
//!
//! The crate knows nothing about ranking: it logs events and hands back
//! bytes. The serving-tier integration (the `DurableService` wrapper,
//! recovery, replay) lives in `rrp-serve`.

#![warn(missing_docs)]

mod crc32;
mod event;
pub mod fault;
mod log;
pub mod snapshot;

pub use crc32::{crc32, crc32_concat};
pub use event::WalEvent;
pub use log::{
    create_log_file, resume_log_file, FileSink, TailStatus, WalError, WalPoll, WalReader, WalSink,
    WalTailReader, WalWriter, WAL_HEADER_LEN, WAL_MAGIC, WAL_VERSION,
};
