//! The fault-injection harness: byte-level log damage and append-time
//! I/O failures, for recovery tests here and in `rrp-serve`.
//!
//! Three faults cover the failure modes a log actually meets:
//!
//! * [`truncate_at`] — cut the file at an arbitrary byte offset, the
//!   shape a torn final write (or a dying disk) leaves behind;
//! * [`flip_byte`] — invert one byte in place, the shape of silent media
//!   corruption that only a checksum can catch;
//! * [`Failpoint`] + [`FailpointSink`] — make the *next* append return an
//!   injected [`std::io::Error`], so callers can prove they surface a
//!   typed error and keep serving state consistent instead of panicking.

use crate::log::WalSink;
use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Cut `path` to `len` bytes — a torn write if `len` lands mid-frame.
pub fn truncate_at(path: &Path, len: u64) -> io::Result<()> {
    OpenOptions::new().write(true).open(path)?.set_len(len)
}

/// Invert the byte at `offset` in place (errors if `offset` is past EOF).
pub fn flip_byte(path: &Path, offset: u64) -> io::Result<()> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    byte[0] = !byte[0];
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(&byte)
}

const DISARMED: i64 = -1;

/// A shared, cloneable trigger for injected append failures. Disarmed by
/// default; [`arm_after`](Failpoint::arm_after)`(n)` lets the next `n`
/// appends through and fails every one after that until
/// [`disarm`](Failpoint::disarm).
#[derive(Clone, Debug)]
pub struct Failpoint {
    remaining: Arc<AtomicI64>,
}

impl Failpoint {
    /// A disarmed failpoint (every append succeeds).
    pub fn new() -> Self {
        Failpoint {
            remaining: Arc::new(AtomicI64::new(DISARMED)),
        }
    }

    /// Allow `appends` more appends, then fail all of them.
    pub fn arm_after(&self, appends: u64) {
        self.remaining
            .store(appends.min(i64::MAX as u64) as i64, Ordering::SeqCst);
    }

    /// Back to letting everything through.
    pub fn disarm(&self) {
        self.remaining.store(DISARMED, Ordering::SeqCst);
    }

    /// Should the current append be failed? (Consumes one grace append
    /// when armed.)
    fn should_fail(&self) -> bool {
        self.remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| {
                if r > 0 {
                    Some(r - 1)
                } else {
                    None // disarmed (−1) or exhausted (0): leave as is
                }
            })
            .map(|_| false)
            .unwrap_or_else(|r| r == 0)
    }
}

impl Default for Failpoint {
    fn default() -> Self {
        Self::new()
    }
}

/// A sink wrapper that consults a [`Failpoint`] before every append.
/// Injected failures happen *before* the inner sink sees any bytes, so a
/// failed append leaves the log exactly as it was.
pub struct FailpointSink<S> {
    inner: S,
    failpoint: Failpoint,
}

impl<S: WalSink> FailpointSink<S> {
    /// Wrap `inner`, gating appends on `failpoint`.
    pub fn new(inner: S, failpoint: Failpoint) -> Self {
        FailpointSink { inner, failpoint }
    }
}

impl<S: WalSink> WalSink for FailpointSink<S> {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.failpoint.should_fail() {
            return Err(io::Error::other("injected WAL append failure"));
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingSink(usize);

    impl WalSink for CountingSink {
        fn append(&mut self, _bytes: &[u8]) -> io::Result<()> {
            self.0 += 1;
            Ok(())
        }

        fn sync(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn failpoint_counts_down_then_fails_until_disarmed() {
        let failpoint = Failpoint::new();
        let mut sink = FailpointSink::new(CountingSink(0), failpoint.clone());
        assert!(sink.append(b"a").is_ok(), "disarmed lets everything pass");
        failpoint.arm_after(2);
        assert!(sink.append(b"b").is_ok());
        assert!(sink.append(b"c").is_ok());
        assert!(sink.append(b"d").is_err(), "grace exhausted");
        assert!(sink.append(b"e").is_err(), "stays failing");
        failpoint.disarm();
        assert!(sink.append(b"f").is_ok());
        assert_eq!(sink.inner.0, 4, "failed appends never reach the sink");
    }

    #[test]
    fn byte_faults_edit_files_in_place() {
        let dir = std::env::temp_dir().join(format!("rrp-wal-fault-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        std::fs::write(&path, [0u8, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        flip_byte(&path, 3).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), [0u8, 1, 2, !3, 4, 5, 6, 7]);
        truncate_at(&path, 5).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), [0u8, 1, 2, !3, 4]);
        assert!(flip_byte(&path, 99).is_err(), "past EOF is an error");
        std::fs::remove_dir_all(&dir).ok();
    }
}
