//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
//!
//! Every WAL record and every snapshot file carries one of these over its
//! content, so a flipped bit anywhere in a frame is detected at read time
//! instead of being folded into serving state. The table is built at
//! compile time; no external crate is involved.

const POLYNOMIAL: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLYNOMIAL
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The checksum of one contiguous byte run.
pub fn crc32(bytes: &[u8]) -> u32 {
    finish(update(!0, bytes))
}

/// The checksum of several runs hashed as if concatenated — the record
/// path checks `seq ‖ payload` without materialising the join.
pub fn crc32_concat(parts: &[&[u8]]) -> u32 {
    let mut state = !0u32;
    for part in parts {
        state = update(state, part);
    }
    finish(state)
}

fn update(mut state: u32, bytes: &[u8]) -> u32 {
    for &byte in bytes {
        state = (state >> 8) ^ TABLE[((state ^ byte as u32) & 0xFF) as usize];
    }
    state
}

fn finish(state: u32) -> u32 {
    !state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_hashes_to_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn concat_equals_one_shot() {
        let whole = b"the quick brown fox";
        assert_eq!(crc32_concat(&[&whole[..9], &whole[9..]]), crc32(whole));
        assert_eq!(crc32_concat(&[whole, b""]), crc32(whole));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = crc32(b"abcdefgh");
        for i in 0..8 {
            for bit in 0..8u8 {
                let mut copy = *b"abcdefgh";
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip byte {i} bit {bit}");
            }
        }
    }
}
