//! A minimal, vendored stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external dependencies are vendored as small compatible
//! subsets under `crates/compat/`. This crate provides the [`Serialize`] and
//! [`Deserialize`] traits (re-exporting the derive macros of the same names
//! from `serde_derive`), built on a simple self-describing [`Value`] data
//! model instead of serde's visitor architecture. The companion
//! `serde_json` crate renders [`Value`] to JSON text and parses it back,
//! which is all the workspace uses serialization for.
//!
//! Supported derive features (the subset the workspace uses):
//! `#[serde(transparent)]` on newtype structs, `#[serde(skip)]` on fields
//! (skipped on serialize, `Default::default()` on deserialize), structs with
//! named fields, unit structs, tuple structs, and enums with unit, newtype,
//! tuple and struct variants (externally tagged, as in real serde).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Fetch an entry of a map value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// View as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// View as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric coercion to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// Numeric coercion to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) if x <= i64::MAX as u64 => Some(x as i64),
            Value::F64(x) if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 => {
                Some(x as i64)
            }
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can convert itself into the [`Value`] data model.
pub trait Serialize {
    /// Convert to the intermediate data model.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct from the intermediate data model.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value.as_u64().ok_or_else(|| {
                    DeError::msg(format!("expected unsigned integer, got {value:?}"))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value.as_i64().ok_or_else(|| {
                    DeError::msg(format!("expected signed integer, got {value:?}"))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                value
                    .as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| DeError::msg(format!("expected number, got {value:?}")))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::msg(format!(
                "expected single-char string, got {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of {N} elements, got {len}")))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::msg(format!("expected sequence, got {value:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| DeError::msg(format!("expected tuple sequence, got {value:?}")))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::msg(format!(
                        "expected tuple of {expected} elements, got {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Render a map key as a string (JSON object keys are strings).
fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(x) => x.to_string(),
        Value::I64(x) => x.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

/// Parse a map key back from its string form.
trait FromKey: Sized {
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl FromKey for String {
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_from_key_num {
    ($($t:ty),*) => {$(
        impl FromKey for $t {
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError::msg(format!("invalid {} map key {key:?}", stringify!($t))))
            }
        }
    )*};
}

impl_from_key_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + FromKey + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::msg(format!("expected map, got {value:?}")))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + FromKey + Ord,
    V: Deserialize,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::msg(format!("expected map, got {value:?}")))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&0.25f64.to_value()).unwrap(), 0.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let none: Option<u64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::U64(3).as_f64(), Some(3.0));
        assert_eq!(Value::F64(3.0).as_u64(), Some(3));
        assert_eq!(Value::F64(3.5).as_u64(), None);
        assert_eq!(Value::I64(-1).as_u64(), None);
    }

    #[test]
    fn map_lookup() {
        let m = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(m.get("a"), Some(&Value::U64(1)));
        assert_eq!(m.get("b"), None);
    }
}
