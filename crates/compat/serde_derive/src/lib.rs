//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the vendored minimal `serde` facade.
//!
//! The build environment has no crates.io access, so this proc-macro crate
//! parses the item's token stream directly (no `syn`/`quote`) and emits
//! implementations of the facade's `to_value`/`from_value` traits. It
//! supports exactly the shapes this workspace derives on: non-generic
//! structs (named, tuple, unit) and enums (unit, newtype, tuple and struct
//! variants), plus the `#[serde(transparent)]` container attribute and the
//! `#[serde(skip)]` / `#[serde(default)]` field attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the facade's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the facade's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// A tiny structural model of the derived item.

struct Field {
    /// Named-field name, or tuple index rendered as a string.
    name: String,
    /// Skipped fields are omitted on serialize and defaulted on deserialize.
    skip: bool,
    /// Defaulted fields fall back to `Default::default()` when missing.
    default: bool,
}

enum Shape {
    Unit,
    /// Tuple struct / tuple variant with `n` unnamed fields.
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    transparent: bool,
    body: Body,
}

// ---------------------------------------------------------------------------
// Token-stream parsing.

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Outer attributes and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if attr_is_serde_flag(g.stream(), "transparent") {
                        transparent = true;
                    }
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported, found `{name}<...>`");
    }

    let body = match kind.as_str() {
        "struct" => {
            match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Struct(Shape::Named(parse_named_fields(g.stream())))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Struct(Shape::Tuple(parse_tuple_fields(g.stream())))
                }
                // Unit struct: `struct Name;`
                _ => Body::Struct(Shape::Unit),
            }
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };

    Item {
        name,
        transparent,
        body,
    }
}

/// Does `#[serde(...)]` attribute content contain the given flag word?
fn attr_is_serde_flag(attr: TokenStream, flag: &str) -> bool {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.get(1) {
        Some(TokenTree::Group(g)) => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == flag)),
        _ => false,
    }
}

/// Parse named fields, tracking `#[serde(skip)]` / `#[serde(default)]`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        let mut default = false;
        // Field attributes.
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                skip |= attr_is_serde_flag(g.stream(), "skip");
                default |= attr_is_serde_flag(g.stream(), "default");
            }
            i += 2;
        }
        // Visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        // Colon.
        i += 1;
        // Skip the type: everything until a comma at zero angle-bracket depth.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

/// Parse tuple-struct fields (only count and per-field attrs matter).
fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut any = false;
    let mut skip = false;
    let mut default = false;
    let mut depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' && depth == 0 => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    skip |= attr_is_serde_flag(g.stream(), "skip");
                    default |= attr_is_serde_flag(g.stream(), "default");
                }
                i += 1; // the group is consumed by the generic advance below
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields.push(Field {
                    name: fields.len().to_string(),
                    skip,
                    default,
                });
                skip = false;
                default = false;
                any = false;
                i += 1;
                continue;
            }
            _ => any = true,
        }
        i += 1;
    }
    if any {
        fields.push(Field {
            name: fields.len().to_string(),
            skip,
            default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant attributes.
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (as source text, parsed back into a token stream).

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(shape) => serialize_shape_expr(shape, item.transparent, "self.", None),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&serialize_variant_arm(name, v));
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Serialize expression for a struct-like shape.
///
/// `access` is the prefix for reaching fields (`self.` for structs, empty
/// for variant bindings). `variant` wraps the result in the externally
/// tagged enum representation.
fn serialize_shape_expr(
    shape: &Shape,
    transparent: bool,
    access: &str,
    variant: Option<&str>,
) -> String {
    let inner = match shape {
        Shape::Unit => "::serde::Value::Map(::std::vec::Vec::new())".to_string(),
        Shape::Tuple(fields) => {
            let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if transparent || active.len() == 1 {
                let f = active.first().expect("transparent/newtype needs a field");
                format!(
                    "::serde::Serialize::to_value(&{access}{})",
                    binding(access, &f.name)
                )
            } else {
                let items: Vec<String> = active
                    .iter()
                    .map(|f| {
                        format!(
                            "::serde::Serialize::to_value(&{access}{})",
                            binding(access, &f.name)
                        )
                    })
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            }
        }
        Shape::Named(fields) => {
            if transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.skip)
                    .expect("transparent needs a field");
                format!("::serde::Serialize::to_value(&{access}{})", f.name)
            } else {
                let mut pushes = String::new();
                for f in fields.iter().filter(|f| !f.skip) {
                    pushes.push_str(&format!(
                        "__fields.push((::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&{access}{0})));",
                        f.name
                    ));
                }
                format!(
                    "{{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                     = ::std::vec::Vec::new(); {pushes} ::serde::Value::Map(__fields) }}"
                )
            }
        }
    };
    match variant {
        None => inner,
        Some(tag) => {
            if matches!(shape, Shape::Unit) {
                format!("::serde::Value::Str(::std::string::String::from(\"{tag}\"))")
            } else {
                format!(
                    "::serde::Value::Map(vec![(::std::string::String::from(\"{tag}\"), {inner})])"
                )
            }
        }
    }
}

/// Tuple fields of variants are bound to `__fN` names; struct fields keep
/// their own names; `self.` access uses the index/name directly.
fn binding(access: &str, field: &str) -> String {
    if access.is_empty() {
        format!("__f{field}")
    } else {
        field.to_string()
    }
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
        ),
        Shape::Tuple(fields) => {
            let binders: Vec<String> = (0..fields.len()).map(|i| format!("__f{i}")).collect();
            let expr = serialize_shape_expr(&v.shape, false, "", Some(vname));
            format!("{enum_name}::{vname}({}) => {expr},\n", binders.join(", "))
        }
        Shape::Named(fields) => {
            let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let expr = serialize_shape_expr(&v.shape, false, "", Some(vname));
            format!(
                "{enum_name}::{vname} {{ {} }} => {expr},\n",
                binders.join(", ")
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(shape) => {
            deserialize_shape_expr(name, None, shape, item.transparent, "__value")
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{0}\" => return ::std::result::Result::Ok({name}::{0}),\n",
                            v.name
                        ));
                    }
                    shape => {
                        let expr =
                            deserialize_shape_expr(name, Some(&v.name), shape, false, "__inner");
                        tagged_arms.push_str(&format!(
                            "\"{0}\" => {{ let __inner = __v; return {expr}; }}\n",
                            v.name
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(__s) = __value {{\n\
                     match __s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let ::serde::Value::Map(__entries) = __value {{\n\
                     if let ::std::option::Option::Some((__tag, __v)) = __entries.first() {{\n\
                         match __tag.as_str() {{ {tagged_arms} _ => {{}} }}\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::DeError::msg(format!(\n\
                     \"unknown {name} variant: {{:?}}\", __value)))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Deserialize expression evaluating to `Result<Type, DeError>`.
fn deserialize_shape_expr(
    type_name: &str,
    variant: Option<&str>,
    shape: &Shape,
    transparent: bool,
    source: &str,
) -> String {
    let constructor = match variant {
        None => type_name.to_string(),
        Some(v) => format!("{type_name}::{v}"),
    };
    match shape {
        Shape::Unit => format!("::std::result::Result::Ok({constructor})"),
        Shape::Tuple(fields) => {
            let active: Vec<(usize, &Field)> =
                fields.iter().enumerate().filter(|(_, f)| !f.skip).collect();
            if transparent || active.len() == 1 {
                let mut args = Vec::new();
                for f in fields {
                    if f.skip {
                        args.push("::std::default::Default::default()".to_string());
                    } else {
                        args.push(format!("::serde::Deserialize::from_value({source})?"));
                    }
                }
                format!(
                    "::std::result::Result::Ok({constructor}({}))",
                    args.join(", ")
                )
            } else {
                let mut args = Vec::new();
                let mut idx = 0usize;
                for f in fields {
                    if f.skip {
                        args.push("::std::default::Default::default()".to_string());
                    } else {
                        args.push(format!("::serde::Deserialize::from_value(&__seq[{idx}])?"));
                        idx += 1;
                    }
                }
                format!(
                    "{{ let __seq = {source}.as_seq().ok_or_else(|| \
                     ::serde::DeError::msg(\"expected sequence for {constructor}\"))?;\n\
                     if __seq.len() != {count} {{ return ::std::result::Result::Err(\
                     ::serde::DeError::msg(format!(\"expected {count} elements for {constructor}, got {{}}\", __seq.len()))); }}\n\
                     ::std::result::Result::Ok({constructor}({args})) }}",
                    count = active.len(),
                    args = args.join(", ")
                )
            }
        }
        Shape::Named(fields) => {
            if transparent {
                let f = fields
                    .iter()
                    .find(|f| !f.skip)
                    .expect("transparent needs a field");
                let mut inits = Vec::new();
                for field in fields {
                    if field.name == f.name {
                        inits.push(format!(
                            "{}: ::serde::Deserialize::from_value({source})?",
                            field.name
                        ));
                    } else {
                        inits.push(format!(
                            "{}: ::std::default::Default::default()",
                            field.name
                        ));
                    }
                }
                format!(
                    "::std::result::Result::Ok({constructor} {{ {} }})",
                    inits.join(", ")
                )
            } else {
                let mut inits = Vec::new();
                for f in fields {
                    if f.skip {
                        inits.push(format!("{}: ::std::default::Default::default()", f.name));
                    } else if f.default {
                        inits.push(format!(
                            "{0}: match {source}.get(\"{0}\") {{\n\
                                 ::std::option::Option::Some(__f) => ::serde::Deserialize::from_value(__f)?,\n\
                                 ::std::option::Option::None => ::std::default::Default::default(),\n\
                             }}",
                            f.name
                        ));
                    } else {
                        inits.push(format!(
                            "{0}: ::serde::Deserialize::from_value({source}.get(\"{0}\")\
                             .ok_or_else(|| ::serde::DeError::msg(\"missing field `{0}`\"))?)?",
                            f.name
                        ));
                    }
                }
                format!(
                    "::std::result::Result::Ok({constructor} {{ {} }})",
                    inits.join(", ")
                )
            }
        }
    }
}
