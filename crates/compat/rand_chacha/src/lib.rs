//! Vendored ChaCha random number generators for the minimal `rand` facade.
//!
//! Implements the real ChaCha block function (D. J. Bernstein) with a
//! 64-bit block counter, exposed as [`ChaCha8Rng`], [`ChaCha12Rng`] and
//! [`ChaCha20Rng`]. Streams are deterministic, portable across platforms,
//! and independent of the upstream crate's exact output (nothing in this
//! workspace depends on upstream golden vectors — only on determinism).

use rand::{RngCore, SeedableRng};

/// `"expand 32-byte k"`, the ChaCha constant.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha generator with `R/2` double rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    nonce: [u32; 2],
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, &start) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(start);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Word stream position, for tests.
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * 16 + self.index as u128
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaRng {
            key,
            counter: 0,
            nonce: [0, 0],
            buffer: [0; 16],
            index: 16,
        }
    }
}

/// ChaCha with 8 rounds: the fast statistically-strong choice.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds: the original cipher's round count.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let equal = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 3);
    }

    #[test]
    fn blocks_differ() {
        // 16 words per block; consecutive blocks must not repeat.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn unit_floats_well_distributed() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn word_pos_advances() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let start = rng.get_word_pos();
        let _ = rng.next_u64();
        assert_eq!(rng.get_word_pos(), start + 2);
    }
}
