//! Vendored ChaCha random number generators for the minimal `rand` facade.
//!
//! Implements the real ChaCha block function (D. J. Bernstein) with a
//! 64-bit block counter, exposed as [`ChaCha8Rng`], [`ChaCha12Rng`] and
//! [`ChaCha20Rng`]. Streams are deterministic, portable across platforms,
//! and independent of the upstream crate's exact output (nothing in this
//! workspace depends on upstream golden vectors — only on determinism).

use rand::{RngCore, SeedableRng};

/// `"expand 32-byte k"`, the ChaCha constant.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// One four-lane vector of the 4×4 ChaCha state matrix.
type Row = [u32; 4];

#[inline(always)]
fn row_add(x: &mut Row, y: &Row) {
    for i in 0..4 {
        x[i] = x[i].wrapping_add(y[i]);
    }
}

#[inline(always)]
fn row_xor_rotl(x: &mut Row, y: &Row, r: u32) {
    for i in 0..4 {
        x[i] = (x[i] ^ y[i]).rotate_left(r);
    }
}

/// Four quarter-rounds applied lane-wise to the state rows — the standard
/// vectorised formulation of the ChaCha round, which LLVM turns into 4-lane
/// SIMD. Identical arithmetic (and therefore output) to applying
/// `quarter_round` to each column.
#[inline(always)]
fn four_quarter_rounds(a: &mut Row, b: &mut Row, c: &mut Row, d: &mut Row) {
    row_add(a, b);
    row_xor_rotl(d, a, 16);
    row_add(c, d);
    row_xor_rotl(b, c, 12);
    row_add(a, b);
    row_xor_rotl(d, a, 8);
    row_add(c, d);
    row_xor_rotl(b, c, 7);
}

/// Rotate a row's lanes left by `n` positions (diagonalisation shuffle).
#[inline(always)]
fn rotate_lanes<const N: usize>(row: &mut Row) {
    let copy = *row;
    for i in 0..4 {
        row[i] = copy[(i + N) % 4];
    }
}

/// Run `DOUBLE_ROUNDS` ChaCha double rounds over the state rows and apply
/// the feed-forward addition, returning the output block rows.
///
/// Portable scalar implementation; on x86_64 the SSE2 path below (always
/// available — SSE2 is in the x86_64 baseline) produces the identical
/// block ~2× faster. Both are pinned by the golden-vector tests.
#[inline(always)]
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
fn block_rows_scalar<const DOUBLE_ROUNDS: usize>(
    a0: Row,
    b0: Row,
    c0: Row,
    d0: Row,
) -> (Row, Row, Row, Row) {
    let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
    for _ in 0..DOUBLE_ROUNDS {
        // Column round: lanes are the columns.
        four_quarter_rounds(&mut a, &mut b, &mut c, &mut d);
        // Diagonalise so the lanes become the diagonals, apply the same
        // lane-wise quarter-rounds, and shuffle back — exactly the
        // QR(0,5,10,15) … QR(3,4,9,14) diagonal round.
        rotate_lanes::<1>(&mut b);
        rotate_lanes::<2>(&mut c);
        rotate_lanes::<3>(&mut d);
        four_quarter_rounds(&mut a, &mut b, &mut c, &mut d);
        rotate_lanes::<3>(&mut b);
        rotate_lanes::<2>(&mut c);
        rotate_lanes::<1>(&mut d);
    }
    row_add(&mut a, &a0);
    row_add(&mut b, &b0);
    row_add(&mut c, &c0);
    row_add(&mut d, &d0);
    (a, b, c, d)
}

/// SSE2 implementation of the ChaCha block: one XMM register per state
/// row, `pshufd` for the diagonalisation. Bit-identical to the scalar
/// formulation.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn block_rows<const DOUBLE_ROUNDS: usize>(
    a0: Row,
    b0: Row,
    c0: Row,
    d0: Row,
) -> (Row, Row, Row, Row) {
    use std::arch::x86_64::*;
    /// `x <<< r` lane-wise; the shift immediates must be literals because
    /// the intrinsics take const generics.
    macro_rules! rotl {
        ($x:expr, $r:literal) => {
            _mm_or_si128(_mm_slli_epi32::<$r>($x), _mm_srli_epi32::<{ 32 - $r }>($x))
        };
    }
    // SAFETY: SSE2 is unconditionally part of the x86_64 baseline target,
    // so these intrinsics are always available on this architecture.
    unsafe {
        #[inline(always)]
        unsafe fn load(row: &Row) -> __m128i {
            _mm_loadu_si128(row.as_ptr() as *const __m128i)
        }
        #[inline(always)]
        unsafe fn store(x: __m128i) -> Row {
            let mut row = [0u32; 4];
            _mm_storeu_si128(row.as_mut_ptr() as *mut __m128i, x);
            row
        }
        let (va0, vb0, vc0, vd0) = (load(&a0), load(&b0), load(&c0), load(&d0));
        let (mut a, mut b, mut c, mut d) = (va0, vb0, vc0, vd0);
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            a = _mm_add_epi32(a, b);
            d = rotl!(_mm_xor_si128(d, a), 16);
            c = _mm_add_epi32(c, d);
            b = rotl!(_mm_xor_si128(b, c), 12);
            a = _mm_add_epi32(a, b);
            d = rotl!(_mm_xor_si128(d, a), 8);
            c = _mm_add_epi32(c, d);
            b = rotl!(_mm_xor_si128(b, c), 7);
            // Diagonalise (lanes left by 1/2/3), …
            b = _mm_shuffle_epi32::<0x39>(b);
            c = _mm_shuffle_epi32::<0x4E>(c);
            d = _mm_shuffle_epi32::<0x93>(d);
            // …diagonal round, …
            a = _mm_add_epi32(a, b);
            d = rotl!(_mm_xor_si128(d, a), 16);
            c = _mm_add_epi32(c, d);
            b = rotl!(_mm_xor_si128(b, c), 12);
            a = _mm_add_epi32(a, b);
            d = rotl!(_mm_xor_si128(d, a), 8);
            c = _mm_add_epi32(c, d);
            b = rotl!(_mm_xor_si128(b, c), 7);
            // …and shuffle back.
            b = _mm_shuffle_epi32::<0x93>(b);
            c = _mm_shuffle_epi32::<0x4E>(c);
            d = _mm_shuffle_epi32::<0x39>(d);
        }
        a = _mm_add_epi32(a, va0);
        b = _mm_add_epi32(b, vb0);
        c = _mm_add_epi32(c, vc0);
        d = _mm_add_epi32(d, vd0);
        (store(a), store(b), store(c), store(d))
    }
}

/// Non-x86_64 targets use the portable scalar block.
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn block_rows<const DOUBLE_ROUNDS: usize>(
    a0: Row,
    b0: Row,
    c0: Row,
    d0: Row,
) -> (Row, Row, Row, Row) {
    block_rows_scalar::<DOUBLE_ROUNDS>(a0, b0, c0, d0)
}

/// Words buffered per refill: two ChaCha blocks, generated together so the
/// wide (AVX2) path can compute them in one pass. The word *stream* is
/// identical to generating one block at a time — block `t` then `t + 1`.
const BUFFER_WORDS: usize = 32;

/// A ChaCha generator with `R/2` double rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    /// Index of the next block to generate.
    counter: u64,
    nonce: [u32; 2],
    buffer: [u32; BUFFER_WORDS],
    /// Next unread word in `buffer`; `BUFFER_WORDS` means "refill".
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let a0: Row = CONSTANTS;
        let b0: Row = self.key[..4].try_into().expect("row");
        let c0: Row = self.key[4..].try_into().expect("row");
        let d0: Row = [
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.nonce[0],
            self.nonce[1],
        ];
        let next = self.counter.wrapping_add(1);
        let d1: Row = [
            next as u32,
            (next >> 32) as u32,
            self.nonce[0],
            self.nonce[1],
        ];

        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: just checked that AVX2 is available.
            unsafe { block_pair_avx2::<DOUBLE_ROUNDS>(a0, b0, c0, d0, d1, &mut self.buffer) };
            self.counter = self.counter.wrapping_add(2);
            self.index = 0;
            return;
        }

        let (a, b, c, d) = block_rows::<DOUBLE_ROUNDS>(a0, b0, c0, d0);
        self.buffer[..4].copy_from_slice(&a);
        self.buffer[4..8].copy_from_slice(&b);
        self.buffer[8..12].copy_from_slice(&c);
        self.buffer[12..16].copy_from_slice(&d);
        let (a, b, c, d) = block_rows::<DOUBLE_ROUNDS>(a0, b0, c0, d1);
        self.buffer[16..20].copy_from_slice(&a);
        self.buffer[20..24].copy_from_slice(&b);
        self.buffer[24..28].copy_from_slice(&c);
        self.buffer[28..].copy_from_slice(&d);
        self.counter = self.counter.wrapping_add(2);
        self.index = 0;
    }

    /// Word stream position, for tests.
    pub fn get_word_pos(&self) -> u128 {
        // `counter` points past the buffered blocks; unread words remain.
        (self.counter as u128) * 16 - (BUFFER_WORDS - self.index) as u128
    }
}

/// Two ChaCha blocks in one pass: each YMM register holds a state row of
/// block 0 in its low 128 bits and of block 1 in its high 128 bits, so the
/// round function and the per-128-bit-lane `vpshufd` diagonalisation run
/// both blocks at once. Output is bit-identical to two `block_rows` calls.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn block_pair_avx2<const DOUBLE_ROUNDS: usize>(
    a0: Row,
    b0: Row,
    c0: Row,
    d0: Row,
    d1: Row,
    out: &mut [u32; BUFFER_WORDS],
) {
    use std::arch::x86_64::*;
    macro_rules! rotl {
        ($x:expr, $r:literal) => {
            _mm256_or_si256(
                _mm256_slli_epi32::<$r>($x),
                _mm256_srli_epi32::<{ 32 - $r }>($x),
            )
        };
    }
    #[inline(always)]
    unsafe fn broadcast(row: &Row) -> __m256i {
        let lane = _mm_loadu_si128(row.as_ptr() as *const __m128i);
        _mm256_broadcastsi128_si256(lane)
    }
    let va0 = broadcast(&a0);
    let vb0 = broadcast(&b0);
    let vc0 = broadcast(&c0);
    // Low 128 bits: block 0's d row; high 128 bits: block 1's.
    let vd0 = _mm256_inserti128_si256::<1>(
        _mm256_castsi128_si256(_mm_loadu_si128(d0.as_ptr() as *const __m128i)),
        _mm_loadu_si128(d1.as_ptr() as *const __m128i),
    );
    let (mut a, mut b, mut c, mut d) = (va0, vb0, vc0, vd0);
    for _ in 0..DOUBLE_ROUNDS {
        // Column round.
        a = _mm256_add_epi32(a, b);
        d = rotl!(_mm256_xor_si256(d, a), 16);
        c = _mm256_add_epi32(c, d);
        b = rotl!(_mm256_xor_si256(b, c), 12);
        a = _mm256_add_epi32(a, b);
        d = rotl!(_mm256_xor_si256(d, a), 8);
        c = _mm256_add_epi32(c, d);
        b = rotl!(_mm256_xor_si256(b, c), 7);
        // Diagonalise (per 128-bit lane), …
        b = _mm256_shuffle_epi32::<0x39>(b);
        c = _mm256_shuffle_epi32::<0x4E>(c);
        d = _mm256_shuffle_epi32::<0x93>(d);
        // …diagonal round, …
        a = _mm256_add_epi32(a, b);
        d = rotl!(_mm256_xor_si256(d, a), 16);
        c = _mm256_add_epi32(c, d);
        b = rotl!(_mm256_xor_si256(b, c), 12);
        a = _mm256_add_epi32(a, b);
        d = rotl!(_mm256_xor_si256(d, a), 8);
        c = _mm256_add_epi32(c, d);
        b = rotl!(_mm256_xor_si256(b, c), 7);
        // …and shuffle back.
        b = _mm256_shuffle_epi32::<0x93>(b);
        c = _mm256_shuffle_epi32::<0x4E>(c);
        d = _mm256_shuffle_epi32::<0x39>(d);
    }
    a = _mm256_add_epi32(a, va0);
    b = _mm256_add_epi32(b, vb0);
    c = _mm256_add_epi32(c, vc0);
    d = _mm256_add_epi32(d, vd0);
    // Low lanes → block 0 (words 0..16), high lanes → block 1 (16..32).
    let ptr = out.as_mut_ptr();
    _mm_storeu_si128(ptr as *mut __m128i, _mm256_castsi256_si128(a));
    _mm_storeu_si128(ptr.add(4) as *mut __m128i, _mm256_castsi256_si128(b));
    _mm_storeu_si128(ptr.add(8) as *mut __m128i, _mm256_castsi256_si128(c));
    _mm_storeu_si128(ptr.add(12) as *mut __m128i, _mm256_castsi256_si128(d));
    _mm_storeu_si128(
        ptr.add(16) as *mut __m128i,
        _mm256_extracti128_si256::<1>(a),
    );
    _mm_storeu_si128(
        ptr.add(20) as *mut __m128i,
        _mm256_extracti128_si256::<1>(b),
    );
    _mm_storeu_si128(
        ptr.add(24) as *mut __m128i,
        _mm256_extracti128_si256::<1>(c),
    );
    _mm_storeu_si128(
        ptr.add(28) as *mut __m128i,
        _mm256_extracti128_si256::<1>(d),
    );
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        // Fast path: both words are already buffered — one branch, two
        // loads. Falls back to word-at-a-time at buffer boundaries so the
        // word stream (and thus every consumer) is unchanged.
        if let [lo, hi, ..] = self.buffer[self.index.min(BUFFER_WORDS)..] {
            self.index += 2;
            return lo as u64 | ((hi as u64) << 32);
        }
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaRng {
            key,
            counter: 0,
            nonce: [0, 0],
            buffer: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }
}

/// ChaCha with 8 rounds: the fast statistically-strong choice.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds: the original cipher's round count.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn golden_vector_matches_scalar_reference() {
        // Recorded from the original scalar (per-column `quarter_round`)
        // implementation; the vectorised block function must reproduce it
        // exactly. These values are also pinned workspace-wide in
        // `tests/determinism.rs`.
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let observed: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            observed,
            vec![
                17369494502333954609,
                8906600561978300523,
                11016226833398420403,
                5554171481409164416,
            ]
        );
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_pair_matches_two_single_blocks() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let mut rng = ChaCha20Rng::seed_from_u64(17);
        for _ in 0..100 {
            let mut row = || -> Row {
                [
                    rng.next_u32(),
                    rng.next_u32(),
                    rng.next_u32(),
                    rng.next_u32(),
                ]
            };
            let (a, b, c, d0) = (row(), row(), row(), row());
            let d1 = row();
            let mut pair = [0u32; BUFFER_WORDS];
            // SAFETY: AVX2 availability checked above.
            unsafe { block_pair_avx2::<4>(a, b, c, d0, d1, &mut pair) };
            let (ra, rb, rc, rd) = block_rows_scalar::<4>(a, b, c, d0);
            assert_eq!(&pair[..4], &ra);
            assert_eq!(&pair[4..8], &rb);
            assert_eq!(&pair[8..12], &rc);
            assert_eq!(&pair[12..16], &rd);
            let (ra, rb, rc, rd) = block_rows_scalar::<4>(a, b, c, d1);
            assert_eq!(&pair[16..20], &ra);
            assert_eq!(&pair[20..24], &rb);
            assert_eq!(&pair[24..28], &rc);
            assert_eq!(&pair[28..], &rd);
        }
    }

    #[test]
    fn simd_and_scalar_blocks_agree() {
        // Exhaustively compare the dispatch path against the portable
        // scalar reference over many states.
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        for _ in 0..200 {
            let a: Row = [
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
            ];
            let b: Row = [
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
            ];
            let c: Row = [
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
            ];
            let d: Row = [
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
                rng.next_u32(),
            ];
            assert_eq!(
                block_rows::<4>(a, b, c, d),
                block_rows_scalar::<4>(a, b, c, d)
            );
            assert_eq!(
                block_rows::<10>(a, b, c, d),
                block_rows_scalar::<10>(a, b, c, d)
            );
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let equal = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 3);
    }

    #[test]
    fn blocks_differ() {
        // 16 words per block; consecutive blocks must not repeat.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn unit_floats_well_distributed() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn word_pos_advances() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let start = rng.get_word_pos();
        let _ = rng.next_u64();
        assert_eq!(rng.get_word_pos(), start + 2);
    }
}
