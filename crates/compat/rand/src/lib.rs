//! A minimal, vendored stand-in for the `rand` crate (offline build).
//!
//! Implements the subset of the `rand` 0.8 API this workspace uses:
//! [`RngCore`], [`SeedableRng`] (with the SplitMix64-based
//! `seed_from_u64`), the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`seq::SliceRandom`] (Fisher–Yates `shuffle`, `choose`),
//! and [`rngs::StdRng`]. All generators are deterministic and portable;
//! none touch OS entropy.

/// The core of a random number generator (object safe).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from the raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` by expanding it with SplitMix64, as upstream
    /// `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step: advances `state` and returns the next output.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (as upstream).
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = uniform_u128(rng, span);
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = uniform_u128(rng, span);
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by rejection sampling (span ≤ 2^64 here).
///
/// The hot path runs entirely in `u64` arithmetic: a non-power-of-two span
/// always fits in a `u64` (the only 2^64 span is a power of two), and
/// `2^64 mod span` can be computed as `((u64::MAX % span) + 1) % span`
/// without touching 128-bit division — the software `u128` modulo used to
/// dominate Fisher–Yates shuffles. Draws, acceptance zone and outputs are
/// bit-identical to the previous all-`u128` formulation.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return (rng.next_u64() as u128) & (span - 1);
    }
    let span = u64::try_from(span).expect("non-power-of-two span fits u64");
    loop {
        let draw = rng.next_u64();
        // The acceptance zone is [0, 2^64 - rem) with rem = 2^64 mod span,
        // and rem < span — so a draw at or below `u64::MAX - span` is
        // accepted for certain without computing the zone. Only the
        // astronomically rare draws in the top `span` values (probability
        // span/2^64) pay for the exact zone test. Accepted draws and
        // rejections are identical to always computing the zone.
        if draw <= u64::MAX - span {
            return (draw % span) as u128;
        }
        // rem = 2^64 mod span; `u64::MAX % span` is already in [0, span),
        // so the outer reduction is a branch rather than a division.
        let r = (u64::MAX % span) + 1;
        let rem = if r == span { 0 } else { r };
        if draw <= u64::MAX - rem {
            return (draw % span) as u128;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = <$t as Standard>::draw(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Pick one element uniformly, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }

    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        rng.gen_range(0..bound)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ here; upstream's
    /// `StdRng` algorithm is explicitly unspecified).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // Never start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn uniform_draw_matches_u128_reference_formulation() {
        // The u64 fast path must reproduce the original all-u128 rejection
        // sampler draw for draw: same acceptance zone, same reduction.
        fn reference<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
            if span.is_power_of_two() {
                return (rng.next_u64() as u128) & (span - 1);
            }
            let zone = (u64::MAX as u128 + 1) - ((u64::MAX as u128 + 1) % span);
            loop {
                let draw = rng.next_u64() as u128;
                if draw < zone {
                    return draw % span;
                }
            }
        }
        for span in [1u128, 2, 3, 7, 10, 1 << 20, (1 << 20) + 1, u64::MAX as u128] {
            let mut a = StdRng::seed_from_u64(99);
            let mut b = StdRng::seed_from_u64(99);
            for _ in 0..2_000 {
                assert_eq!(
                    uniform_u128(&mut a, span),
                    reference(&mut b, span),
                    "span {span}"
                );
            }
            assert_eq!(a, b, "identical RNG stream consumption for span {span}");
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle virtually never is identity"
        );
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        let mut v = [1u8, 2, 3];
        v.shuffle(dyn_rng);
        let i = dyn_rng.gen_range(0usize..3);
        assert!(i < 3);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
