//! A minimal, vendored stand-in for `serde_json`: renders the facade's
//! `serde::Value` data model to JSON text and parses JSON text back.
//!
//! Supports everything the workspace's round-trip tests exercise: objects,
//! arrays, strings with escapes, booleans, null, and numbers (shortest
//! round-trip float formatting, like the real crate).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching the real crate's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serialize a value to pretty-printed JSON text (two-space indents).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0)?;
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer.

fn write_value(value: &Value, out: &mut String) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => out.push_str(&format_f64(*x)?),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(value: &Value, out: &mut String, indent: usize) -> Result<()> {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
            Ok(())
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(key, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
            Ok(())
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Shortest round-trip formatting, as the real crate produces ("0.4", "1.0").
fn format_f64(x: f64) -> Result<String> {
    if !x.is_finite() {
        return Err(Error(format!("cannot serialize non-finite float {x}")));
    }
    if x == x.trunc() && x.abs() < 1e16 {
        Ok(format!("{x:.1}"))
    } else {
        Ok(format!("{x}"))
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid codepoint {code}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(e.to_string()))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&0.4f64).unwrap(), "0.4");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<f64>("0.4").unwrap(), 0.4);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f64, 2.5, -3.0];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.0,2.5,-3.0]");
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let s = "say \"hi\"\nnow".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u64> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 trailing").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
