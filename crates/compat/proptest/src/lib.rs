//! A minimal, vendored property-testing harness compatible with the subset
//! of the `proptest` API this workspace uses (offline build).
//!
//! Differences from the real crate: no shrinking (failures report the seed
//! and case number instead of a minimal counterexample), and the case count
//! defaults to 256 (override with `PROPTEST_CASES`). Generation is fully
//! deterministic per test name, so failures reproduce.

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// The generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Build from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform in an integer/float range.
    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. Unlike the real crate there is no shrinking tree;
/// `generate` directly produces a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backing `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the already-boxed options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Strategies for primitive types.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Generates arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategies for numeric types.
pub mod num {
    /// `u64` strategies.
    pub mod u64 {
        use crate::{Strategy, TestRng};

        /// Generates arbitrary `u64` values over the full range.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The full-range strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u64;
            fn generate(&self, rng: &mut TestRng) -> u64 {
                rng.next_u64()
            }
        }
    }

    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Generates arbitrary `f64` bit patterns: finite values of every
        /// magnitude, plus infinities and NaN (as the real crate's
        /// `f64::ANY` can).
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The anything-goes strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                // Mix raw bit patterns (which skew to huge exponents) with
                // "everyday" magnitudes so both regimes are exercised.
                match rng.gen_range(0u32..4) {
                    0 => f64::from_bits(rng.next_u64()),
                    1 => rng.gen_range(-1.0e3f64..1.0e3),
                    2 => rng.gen_range(-1.0f64..1.0),
                    _ => {
                        let special = [
                            0.0,
                            -0.0,
                            f64::INFINITY,
                            f64::NEG_INFINITY,
                            f64::NAN,
                            f64::MIN_POSITIVE,
                            f64::EPSILON,
                        ];
                        special[rng.gen_range(0usize..special.len())]
                    }
                }
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generate vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "proptest::collection::vec: empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a hash of a string, used to derive a stable per-test seed.
pub fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Number of cases per property (override with `PROPTEST_CASES`).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Drive one property: deterministic seeds derived from the test name, a
/// bounded reject budget, and panics carrying the case seed on failure.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let cases = case_count();
    let root = fnv1a(name);
    let mut rejects = 0u64;
    let max_rejects = cases.saturating_mul(16).max(1024);
    let mut index = 0u64;
    let mut passed = 0u64;
    while passed < cases {
        let seed = root
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .rotate_left(17);
        index += 1;
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "property `{name}`: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("property `{name}` failed at case {index} (seed {seed:#x}): {message}");
            }
        }
    }
}

/// Wraps property functions into `#[test]` functions.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __case = |__rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                };
                $crate::run_cases(stringify!($name), &mut __case);
            }
        )*
    };
}

/// Assert inside a property; failure reports the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Reject the current case (not counted as a pass or failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Strategy, TestCaseError,
    };

    /// Namespace alias matching the real crate's `prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let x = crate::Strategy::generate(&(3u64..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = crate::Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::new(2);
        let strategy = prop::collection::vec(0u64..5, 1..4);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&strategy, &mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn map_and_oneof_work() {
        let mut rng = crate::TestRng::new(3);
        let strategy = prop_oneof![Just(1u64), Just(2u64)].prop_map(|x| x * 10);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&strategy, &mut rng);
            assert!(v == 10 || v == 20);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..100, flag in prop::bool::ANY) {
            prop_assume!(x != 99);
            prop_assert!(x < 100);
            if flag {
                prop_assert_eq!(x, x);
                prop_assert_ne!(x, x + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        crate::run_cases("always_fails", |_rng| {
            Err(crate::TestCaseError::Fail("nope".into()))
        });
    }
}
