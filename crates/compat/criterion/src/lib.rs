//! A minimal, vendored stand-in for the `criterion` benchmark harness
//! (offline build).
//!
//! Implements the API surface the workspace's micro-benchmarks use:
//! [`Criterion`], [`BenchmarkGroup`] (with `measurement_time` /
//! `sample_size` / `throughput` / `bench_function` / `bench_with_input`),
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], [`black_box`] and
//! the `criterion_group!` / `criterion_main!` macros. Statistics are
//! simple — per sample it measures one timed batch and reports the median
//! and min/max of the per-iteration time — but the measurement loop is
//! real, so regressions still show.
//!
//! ## Machine-readable output
//!
//! When the `CRITERION_OUTPUT_JSON` environment variable names a file,
//! every benchmark appends one JSON line to it as it completes:
//!
//! ```json
//! {"label":"group/bench/10000","median_ns":123.4,"min_ns":120.0,
//!  "max_ns":130.9,"samples":20,"iterations":512}
//! ```
//!
//! Benchmarks that declare [`Throughput::Elements`] additionally report
//! `"elements"` and `"per_element_median_ns"` — the per-query medians CI
//! archives from the serving benchmark. The file is appended to, never
//! truncated, so delete it first for a fresh run.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        BenchmarkId {
            text: text.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// Declared throughput of one benchmark iteration, used to derive
/// per-element cost from the measured per-iteration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// One iteration processes this many logical elements (e.g. queries).
    Elements(u64),
    /// One iteration processes this many bytes.
    Bytes(u64),
}

/// The measurement driver passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it in batches until the measurement budget
    /// is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let budget = self.measurement_time;
        let samples = self.sample_size;
        run_benchmark(id, budget, samples, None, f);
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the group's measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Set the group's sample count.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Declare how many elements one iteration of the following
    /// benchmarks processes; reports gain a derived per-element median.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a routine under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{id}", self.name);
        run_benchmark(
            &label,
            self.measurement_time,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmark a routine that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Calibrate an iteration count, then collect timed samples and report.
fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    budget: Duration,
    samples: usize,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    // Calibration: find how many iterations fit one sample's time slice.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let slice = budget
        .div_f64(samples as f64)
        .max(Duration::from_micros(50));
    let iterations = (slice.as_secs_f64() / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

    let mut per_iter_nanos: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        per_iter_nanos.push(bencher.elapsed.as_nanos() as f64 / iterations as f64);
    }
    per_iter_nanos.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_nanos[per_iter_nanos.len() / 2];
    let min = per_iter_nanos.first().copied().unwrap_or(0.0);
    let max = per_iter_nanos.last().copied().unwrap_or(0.0);
    let per_element = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if n > 0 => {
            Some((n, median / n as f64))
        }
        _ => None,
    };
    let per_element_note = per_element
        .map(|(n, per)| format!(", {} / element × {n}", format_nanos(per)))
        .unwrap_or_default();
    println!(
        "  {label}: median {} [min {}, max {}] ({samples} samples × {iterations} iters{per_element_note})",
        format_nanos(median),
        format_nanos(min),
        format_nanos(max),
    );
    if let Ok(path) = std::env::var("CRITERION_OUTPUT_JSON") {
        if !path.is_empty() {
            let record = json_record(label, median, min, max, samples, iterations, per_element);
            append_line(&path, &record);
        }
    }
}

/// Render one benchmark result as a single JSON object (no trailing
/// newline). Kept separate from the file append so tests can pin the
/// exact format without touching the environment.
fn json_record(
    label: &str,
    median: f64,
    min: f64,
    max: f64,
    samples: usize,
    iterations: u64,
    per_element: Option<(u64, f64)>,
) -> String {
    let mut record = format!(
        "{{\"label\":\"{}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\
         \"samples\":{samples},\"iterations\":{iterations}",
        escape_json(label)
    );
    if let Some((elements, per)) = per_element {
        record.push_str(&format!(
            ",\"elements\":{elements},\"per_element_median_ns\":{per:.1}"
        ));
    }
    record.push('}');
    record
}

/// Append one line to the JSON sink; measurement must not die on a bad
/// path, so I/O failures only warn.
fn append_line(path: &str, line: &str) {
    use std::io::Write;
    let opened = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path);
    let written = opened.and_then(|mut file| writeln!(file, "{line}"));
    if let Err(error) = written {
        eprintln!("warning: CRITERION_OUTPUT_JSON append to {path} failed: {error}");
    }
}

/// Minimal JSON string escaping for benchmark labels.
fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(10).to_string(), "10");
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(format_nanos(12.34), "12.3 ns");
        assert_eq!(format_nanos(12_340.0), "12.34 µs");
        assert_eq!(format_nanos(12_340_000.0), "12.34 ms");
    }

    #[test]
    fn json_record_shapes() {
        assert_eq!(
            json_record("g/b/10000", 128.0, 120.5, 140.24, 20, 512, None),
            "{\"label\":\"g/b/10000\",\"median_ns\":128.0,\"min_ns\":120.5,\
             \"max_ns\":140.2,\"samples\":20,\"iterations\":512}"
        );
        assert_eq!(
            json_record("g", 640.0, 640.0, 640.0, 2, 1, Some((64, 10.0))),
            "{\"label\":\"g\",\"median_ns\":640.0,\"min_ns\":640.0,\
             \"max_ns\":640.0,\"samples\":2,\"iterations\":1,\
             \"elements\":64,\"per_element_median_ns\":10.0}"
        );
    }

    #[test]
    fn json_labels_are_escaped() {
        assert_eq!(escape_json("plain/label_10"), "plain/label_10");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn append_line_appends_without_truncating() {
        let path = std::env::temp_dir().join(format!(
            "criterion-compat-append-{}.jsonl",
            std::process::id()
        ));
        let path = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(path);
        append_line(path, "{\"label\":\"first\"}");
        append_line(path, "{\"label\":\"second\"}");
        let contents = std::fs::read_to_string(path).expect("sink readable");
        assert_eq!(contents, "{\"label\":\"first\"}\n{\"label\":\"second\"}\n");
        let _ = std::fs::remove_file(path);
    }
}
