//! The incremental per-corpus ranking caches, bundled.
//!
//! Every steady-state consumer of the presorted ranking path keeps the
//! same three derived structures alive across queries: the per-slot
//! [`PageStats`] snapshot, the [`PopularityIndex`] over it, and — since
//! this module — the [`PoolIndex`] recording selective-promotion
//! membership. [`CorpusCache`] owns all three plus the shared dirty list
//! that keeps them honest: a mutation patches one stats slot and marks it
//! dirty; [`repair`](CorpusCache::repair) then brings *both* indexes
//! current from the same dirty slots (membership flips exactly where
//! popularity keys move, because both are functions of the mutated slot's
//! stats). Nothing is ever re-derived wholesale on a query path — the
//! "repair, don't rebuild" discipline of incremental view maintenance.

use crate::document::Document;
use crate::engine::RankPromotionEngine;
use rrp_ranking::{PageStats, PoolIndex, PoolView, PopularityIndex};
use serde::{Deserialize, Serialize};

/// The persistent ranking caches over one corpus of [`Document`]s:
/// statistics snapshot, popularity order, and promotion-pool membership,
/// repaired together from a shared dirty list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusCache {
    /// `PageStats` for each slot (slot = insertion index), patched in
    /// place on mutation.
    stats: Vec<PageStats>,
    /// Popularity order over the slots, repaired via dirty-slot
    /// binary-search reinsertion.
    popularity: PopularityIndex,
    /// Selective-promotion pool membership (unexplored slots, ascending),
    /// repaired from the same dirty slots.
    pool: PoolIndex,
    /// Whether the pool index is kept current (see
    /// [`set_pool_maintained`](Self::set_pool_maintained)).
    maintain_pool: bool,
    /// Slots whose stats changed (or appeared) since the last repair —
    /// deduplicated on entry via `dirty_mask`, so the list is bounded by
    /// the corpus size no matter how long repairs are deferred (a serving
    /// tier repairs a tier only when a query consults it; the other
    /// tier's mutations must not accumulate without bound).
    dirty: Vec<usize>,
    /// Per-slot "already in `dirty`" mask (cleared during repair).
    dirty_mask: Vec<bool>,
}

impl Default for CorpusCache {
    fn default() -> Self {
        CorpusCache {
            stats: Vec::new(),
            popularity: PopularityIndex::default(),
            pool: PoolIndex::default(),
            maintain_pool: true,
            dirty: Vec::new(),
            dirty_mask: Vec::new(),
        }
    }
}

impl CorpusCache {
    /// An empty cache; slots join through [`push`](Self::push) (or a bulk
    /// [`rebuild`](Self::rebuild)).
    pub fn new() -> Self {
        CorpusCache::default()
    }

    /// Enable or disable pool-index maintenance (on by default). An owner
    /// whose engine never reads the pool —
    /// [`PolicyKind::reads_pool_index`](rrp_ranking::PolicyKind::reads_pool_index)
    /// is the predicate; the Uniform rule re-draws its per-page coins —
    /// can switch it off so rebuilds and repairs stop paying for dead
    /// state. The [`view`](Self::view) still carries the (then empty)
    /// index, which such engines ignore.
    pub fn set_pool_maintained(&mut self, maintained: bool) {
        self.maintain_pool = maintained;
    }

    /// Whether the pool index is being kept current.
    #[inline]
    pub fn pool_maintained(&self) -> bool {
        self.maintain_pool
    }

    /// Number of cached slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether the cache holds no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// The per-slot statistics snapshot.
    #[inline]
    pub fn stats(&self) -> &[PageStats] {
        &self.stats
    }

    /// The popularity order (best rank first). Only current after
    /// [`repair`](Self::repair); query paths call that first.
    #[inline]
    pub fn order(&self) -> &[usize] {
        self.popularity.order()
    }

    /// The promotion-pool membership index. Only current after
    /// [`repair`](Self::repair).
    #[inline]
    pub fn pool(&self) -> &PoolIndex {
        &self.pool
    }

    /// The query-time [`PoolView`] over the cache's three maintained
    /// structures — what the pooled rerank paths rank against. Only
    /// current after [`repair`](Self::repair).
    #[inline]
    pub fn view(&self) -> PoolView<'_> {
        PoolView::new(&self.stats, self.popularity.order(), &self.pool)
    }

    /// Number of dirty slots awaiting the next repair (deduplicated on
    /// entry, so bounded by the corpus size however long repair is
    /// deferred).
    #[inline]
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Append one document as the next slot (`O(1)`); it joins both
    /// indexes at the next [`repair`](Self::repair) via the dirty list.
    pub fn push(&mut self, document: &Document) {
        let slot = self.stats.len();
        self.stats
            .push(RankPromotionEngine::document_stat(slot, document));
        self.dirty.push(slot);
        self.dirty_mask.push(true);
    }

    /// Patch the cached stats of one existing slot after a mutation and
    /// mark it dirty (`O(1)`; a slot already pending repair is not
    /// re-listed, so deferring repairs never grows the dirty list past
    /// the corpus size).
    pub fn patch(&mut self, slot: usize, document: &Document) {
        self.stats[slot] = RankPromotionEngine::document_stat(slot, document);
        if !self.dirty_mask[slot] {
            self.dirty_mask[slot] = true;
            self.dirty.push(slot);
        }
    }

    /// Discard the incremental state and re-derive everything from
    /// `documents`: recompute every stats entry, re-sort the popularity
    /// order, re-scan pool membership. The recovery/maintenance escape
    /// hatch — no query or mutation path needs it.
    pub fn rebuild(&mut self, documents: &[Document]) {
        RankPromotionEngine::document_stats(documents, &mut self.stats);
        self.popularity.rebuild(&self.stats);
        if self.maintain_pool {
            self.pool.rebuild(&self.stats);
        }
        self.dirty.clear();
        self.dirty_mask.clear();
        self.dirty_mask.resize(self.stats.len(), false);
    }

    /// Bring both indexes current by repairing the dirty slots (no-op when
    /// nothing changed), returning the number of dirty entries handed to
    /// the repair (distinct slots — the list deduplicates on entry). Every
    /// query path calls this first.
    ///
    /// The pool index is repaired from the dirty list *before* the
    /// popularity repair drains it; both end up exactly where a
    /// from-scratch derivation would put them (each repair carries its own
    /// debug assertion against the fresh derivation, so a producer that
    /// mutates stats without marking the slot dirty trips here).
    pub fn repair(&mut self) -> u64 {
        let handed = self.dirty.len() as u64;
        if handed > 0 {
            if self.maintain_pool {
                self.pool.repair(&self.stats, &self.dirty);
            }
            // Restore the mask before the popularity repair drains the
            // list (`O(d)` — exactly the entries set since last time).
            for &slot in &self.dirty {
                self.dirty_mask[slot] = false;
            }
            self.popularity.repair(&self.stats, &mut self.dirty);
        }
        handed
    }

    /// Test-only back door: mutable stats access that bypasses the dirty
    /// list. Exists solely so drift-tripwire tests can prove that a
    /// producer mutating stats *without* marking the slot dirty is caught
    /// by the repair assertions instead of silently served (those tests
    /// only exist where the assertions fire, hence the
    /// `debug_assertions` gate — release-profile test builds would
    /// otherwise flag this as dead code).
    #[cfg(all(test, debug_assertions))]
    pub(crate) fn stats_mut_unmarked(&mut self) -> &mut [PageStats] {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_ranking::popularity_order;

    fn documents() -> Vec<Document> {
        (0..40u64)
            .map(|i| {
                if i % 4 == 0 {
                    Document::unexplored(i)
                } else {
                    Document::established(i, 1.0 - i as f64 * 0.02).with_age(i % 7)
                }
            })
            .collect()
    }

    fn assert_matches_rebuild(cache: &CorpusCache, documents: &[Document]) {
        let mut fresh = CorpusCache::new();
        fresh.rebuild(documents);
        assert_eq!(cache.stats(), fresh.stats());
        assert_eq!(cache.order(), fresh.order());
        assert_eq!(cache.pool().members(), fresh.pool().members());
    }

    #[test]
    fn pushed_corpus_matches_a_bulk_rebuild_after_repair() {
        let docs = documents();
        let mut cache = CorpusCache::new();
        for d in &docs {
            cache.push(d);
        }
        assert_eq!(cache.dirty_len(), docs.len());
        assert_eq!(cache.repair(), docs.len() as u64);
        assert_eq!(cache.dirty_len(), 0);
        assert_matches_rebuild(&cache, &docs);
        assert_eq!(cache.len(), docs.len());
        assert!(!cache.is_empty());
    }

    #[test]
    fn patches_flow_into_both_indexes() {
        let mut docs = documents();
        let mut cache = CorpusCache::new();
        for d in &docs {
            cache.push(d);
        }
        cache.repair();

        // A visit removes slot 0 from the pool; a popularity update moves
        // slot 7 in the order; an insert appends slot 40.
        docs[0].is_unexplored = false;
        cache.patch(0, &docs[0]);
        docs[7].popularity = 2.0;
        cache.patch(7, &docs[7]);
        docs.push(Document::unexplored(99));
        cache.push(docs.last().unwrap());

        assert_eq!(cache.repair(), 3);
        assert_matches_rebuild(&cache, &docs);
        assert!(!cache.pool().contains(0));
        assert!(cache.pool().contains(40));
        assert!(
            cache.order().windows(2).all(|w| popularity_order(
                &cache.stats()[w[0]],
                &cache.stats()[w[1]]
            )
            .is_lt()),
            "order stays sorted"
        );
    }

    #[test]
    fn disabled_pool_maintenance_skips_the_pool_but_not_the_order() {
        let docs = documents();
        let mut cache = CorpusCache::new();
        cache.set_pool_maintained(false);
        assert!(!cache.pool_maintained());
        for d in &docs {
            cache.push(d);
        }
        cache.repair();
        assert!(cache.pool().is_empty(), "pool is dead state, never filled");
        let mut fresh = CorpusCache::new();
        fresh.rebuild(&docs);
        assert_eq!(cache.order(), fresh.order(), "the order is still exact");
        cache.rebuild(&docs);
        assert!(cache.pool().is_empty());
    }

    #[test]
    fn deferred_repairs_keep_the_dirty_list_bounded() {
        // A serving tier repairs a cache only when a query consults it;
        // a tier serving pure top-k (or pure full-rerank) traffic defers
        // the other tier's repair indefinitely while mutations keep
        // arriving. The dirty list must therefore deduplicate on entry:
        // re-patching the same slots ten thousand times may not grow it.
        let docs = documents();
        let mut cache = CorpusCache::new();
        for d in &docs {
            cache.push(d);
        }
        cache.repair();
        for _ in 0..10_000 {
            cache.patch(0, &docs[0]);
            cache.patch(7, &docs[7]);
        }
        assert_eq!(cache.dirty_len(), 2, "the backlog is bounded by n");
        assert_eq!(cache.repair(), 2);
        assert_matches_rebuild(&cache, &docs);
        // The mask restores with the repair: slots can go dirty again.
        cache.patch(0, &docs[0]);
        assert_eq!(cache.dirty_len(), 1);
    }

    #[test]
    fn repair_on_a_clean_cache_is_a_no_op() {
        let docs = documents();
        let mut cache = CorpusCache::new();
        for d in &docs {
            cache.push(d);
        }
        cache.repair();
        assert_eq!(cache.repair(), 0);
        assert_matches_rebuild(&cache, &docs);
    }
}
