//! The document view a host search engine hands to the rank-promotion
//! engine.

use serde::{Deserialize, Serialize};

/// One query result as seen by the rank-promotion layer.
///
/// The host engine supplies whatever popularity score it already ranks by
/// (PageRank, in-link count, click count, …) plus a flag marking documents
/// it considers *unexplored* — typically documents whose popularity signal
/// is still zero because they are new. Quality is deliberately absent: the
/// whole point of rank promotion is that intrinsic quality cannot be
/// observed directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// The host engine's identifier for the document.
    pub id: u64,
    /// Popularity score (any non-negative scale; only the ordering matters).
    pub popularity: f64,
    /// Whether the document is unexplored (no recorded user exposure). The
    /// selective promotion rule promotes exactly these documents.
    pub is_unexplored: bool,
    /// Age in days, used only to break popularity ties (older first, as a
    /// stable convention).
    pub age_days: u64,
}

impl Document {
    /// Convenience constructor for an established document.
    pub fn established(id: u64, popularity: f64) -> Self {
        Document {
            id,
            popularity,
            is_unexplored: false,
            age_days: 0,
        }
    }

    /// Convenience constructor for a brand-new, unexplored document.
    pub fn unexplored(id: u64) -> Self {
        Document {
            id,
            popularity: 0.0,
            is_unexplored: true,
            age_days: 0,
        }
    }

    /// Builder-style setter for the document age.
    pub fn with_age(mut self, age_days: u64) -> Self {
        self.age_days = age_days;
        self
    }
}

/// Identifies one query evaluation so that the randomized portion of the
/// ranking is deterministic *per user session* but varies across users and
/// across unrelated queries — the paper's answer to "lest users learn over
/// time to avoid [fixed positions]" while still giving any one user a
/// stable list if they re-run their query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryContext {
    /// Hash of the query string (or canonical query id).
    pub query_hash: u64,
    /// Hash of the user / session identifier.
    pub session_hash: u64,
}

impl QueryContext {
    /// Build a context from raw hashes.
    pub fn new(query_hash: u64, session_hash: u64) -> Self {
        QueryContext {
            query_hash,
            session_hash,
        }
    }

    /// Hash arbitrary query and session strings (FNV-1a, stable across
    /// platforms and releases — `DefaultHasher` is not guaranteed stable).
    pub fn from_strings(query: &str, session: &str) -> Self {
        QueryContext {
            query_hash: fnv1a(query.as_bytes()),
            session_hash: fnv1a(session.as_bytes()),
        }
    }

    /// Mix the two hashes into a single RNG seed.
    pub fn seed(&self, engine_seed: u64) -> u64 {
        // SplitMix-style mixing of the three components.
        let mut z = engine_seed
            .wrapping_add(self.query_hash.rotate_left(17))
            .wrapping_add(self.session_hash.rotate_left(43));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_the_right_flags() {
        let e = Document::established(7, 0.5).with_age(12);
        assert_eq!(e.id, 7);
        assert_eq!(e.popularity, 0.5);
        assert!(!e.is_unexplored);
        assert_eq!(e.age_days, 12);
        let u = Document::unexplored(9);
        assert!(u.is_unexplored);
        assert_eq!(u.popularity, 0.0);
    }

    #[test]
    fn query_context_seed_depends_on_all_components() {
        let base = QueryContext::new(1, 2);
        assert_ne!(base.seed(0), QueryContext::new(1, 3).seed(0));
        assert_ne!(base.seed(0), QueryContext::new(2, 2).seed(0));
        assert_ne!(base.seed(0), base.seed(1));
        assert_eq!(base.seed(5), QueryContext::new(1, 2).seed(5));
    }

    #[test]
    fn string_hashing_is_stable_and_distinguishes_inputs() {
        let a = QueryContext::from_strings("rust simulator", "session-1");
        let b = QueryContext::from_strings("rust simulator", "session-1");
        let c = QueryContext::from_strings("rust simulator", "session-2");
        let d = QueryContext::from_strings("swimming", "session-1");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Known FNV-1a property: empty string hashes to the offset basis.
        assert_eq!(
            QueryContext::from_strings("", "").query_hash,
            0xcbf2_9ce4_8422_2325
        );
    }
}
