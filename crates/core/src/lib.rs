//! # rrp-core — randomized rank promotion for search engines
//!
//! This crate is the public face of the `rrp` workspace, a from-scratch
//! implementation of *"Shuffling a Stacked Deck: The Case for Partially
//! Randomized Ranking of Search Engine Results"* (Pandey, Roy, Olston, Cho,
//! Chakrabarti, 2005).
//!
//! The paper's observation: popularity-based ranking systematically starves
//! new, high-quality pages of attention (the *entrenchment effect*), and
//! inserting a small, randomized dose of unexplored pages into result lists
//! ("rank promotion") recovers most of the lost result quality. Its
//! recommendation: promote only zero-awareness pages, use 10% randomization
//! (`r = 0.1`), and start at rank 1 or 2.
//!
//! What this crate offers:
//!
//! * [`RankPromotionEngine`] — the embeddable re-ranker: hand it your query
//!   results (popularity score + "unexplored" flag per document) and a
//!   query/session context, get back the promoted ordering. Deterministic
//!   per session, different across sessions.
//! * [`ParameterAdvisor`] — evaluates the paper's analytic model for *your*
//!   community's characteristics (pages, users, visit rate, page lifetime)
//!   and predicts how much promotion would help and with which parameters.
//! * Re-exports of the full research stack for evaluation work: the domain
//!   model ([`model`]), ranking policies ([`ranking`]), user-attention model
//!   ([`attention`]), analytic steady-state model ([`analytic`]) and the
//!   community simulator ([`sim`]).
//!
//! ```
//! use rrp_core::{Document, QueryContext, RankPromotionEngine};
//!
//! // Results for one query, as scored by the host engine.
//! let results = vec![
//!     Document::established(101, 0.93),
//!     Document::established(102, 0.71),
//!     Document::established(103, 0.44),
//!     Document::unexplored(900), // brand-new page, no popularity yet
//!     Document::unexplored(901),
//! ];
//!
//! let engine = RankPromotionEngine::recommended(); // selective, r = 0.1, k = 2
//! let ctx = QueryContext::from_strings("swimming", "session-42");
//! let order = engine.rerank(&results, ctx);
//!
//! assert_eq!(order[0], 101);      // the top result is never perturbed
//! assert_eq!(order.len(), 5);     // every document appears exactly once
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod advisor;
pub mod cache;
pub mod document;
pub mod engine;
pub mod prelude;
pub mod shardcache;

pub use advisor::{Advice, CandidateOutcome, ParameterAdvisor};
pub use cache::CorpusCache;
pub use document::{Document, QueryContext};
pub use engine::{RankPromotionEngine, RerankScratch};
pub use shardcache::{PublishedVersion, ShardedCorpusCache};

// Re-export the supporting crates under stable module names so downstream
// users need a single dependency.
pub use rrp_analytic as analytic;
pub use rrp_attention as attention;
pub use rrp_model as model;
pub use rrp_ranking as ranking;
pub use rrp_sim as sim;

// The most commonly used configuration types, re-exported at the top level.
pub use rrp_ranking::{EngineVersion, PromotionConfig, PromotionRule};
