//! The embeddable rank-promotion engine.
//!
//! [`RankPromotionEngine`] is the piece a production search engine would
//! actually adopt: it takes the engine's own ranked candidates (documents
//! with popularity scores and an "unexplored" flag) and re-orders them
//! according to the paper's randomized rank-promotion scheme. The
//! randomization is a pure function of `(engine seed, query, session)`, so
//! a user re-running the same query in the same session sees a stable list,
//! while different users explore different promoted documents.

use crate::cache::CorpusCache;
use crate::document::{Document, QueryContext};
use rrp_model::new_rng;
use rrp_model::PageId;
use rrp_ranking::{
    EngineVersion, PageStats, PoolView, PromotionConfig, PromotionRule, RandomizedRankPromotion,
    RankBuffers,
};
use serde::{Deserialize, Serialize};

/// Reusable scratch state for the allocation-free rerank path.
///
/// One `RerankScratch` per caller (or per worker thread in a batch server)
/// turns [`RankPromotionEngine::rerank_slots_into`] into an allocation-free
/// operation after the first call: the per-document statistics snapshot and
/// the ranking arena are rebuilt in place each time.
#[derive(Debug, Default)]
pub struct RerankScratch {
    stats: Vec<PageStats>,
    buffers: RankBuffers,
}

impl RerankScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        RerankScratch::default()
    }

    /// A scratch pre-grown for result lists of `n` documents.
    pub fn with_capacity(n: usize) -> Self {
        RerankScratch {
            stats: Vec::with_capacity(n),
            buffers: RankBuffers::with_capacity(n),
        }
    }
}

/// Re-ranks query results with randomized rank promotion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankPromotionEngine {
    config: PromotionConfig,
    /// Engine-level seed mixed into every query's randomization.
    seed: u64,
    /// Which observable RNG stream the engine draws. Defaults to
    /// [`EngineVersion::V1`] — engines serialized before versioning
    /// existed deserialize to v1 and keep their recorded goldens valid.
    #[serde(default)]
    version: EngineVersion,
}

impl RankPromotionEngine {
    /// Build an engine with an explicit promotion configuration.
    pub fn new(config: PromotionConfig) -> Self {
        RankPromotionEngine {
            config,
            seed: 0,
            version: EngineVersion::V1,
        }
    }

    /// The paper's recommended configuration (Section 6.4): selective
    /// promotion of unexplored documents, 10% randomization, top result
    /// protected (`k = 2`).
    pub fn recommended() -> Self {
        RankPromotionEngine::new(PromotionConfig::recommended(2))
    }

    /// Set the engine-level seed (e.g. rotated daily so that promoted
    /// positions change over time even for identical sessions).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The promotion configuration in use.
    pub fn config(&self) -> PromotionConfig {
        self.config
    }

    /// The engine-level seed mixed into every query's randomization.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Opt into an explicit [`EngineVersion`]. V1 (the default) keeps
    /// every recorded golden valid; v2 serves Selective top-k through the
    /// lazy `O(k)`-draw pool shuffle — a different, distributionally
    /// equivalent RNG stream with its own golden set. Full reranks and
    /// Uniform-rule engines behave identically under either version.
    pub fn with_version(mut self, version: EngineVersion) -> Self {
        self.version = version;
        self
    }

    /// The engine version in use.
    pub fn version(&self) -> EngineVersion {
        self.version
    }

    /// The ranking policy this engine runs: its configuration and version,
    /// ready for the ranking-layer entry points.
    fn policy(&self) -> RandomizedRankPromotion {
        RandomizedRankPromotion::new(self.config).with_version(self.version)
    }

    /// Whether this engine's pooled query paths actually read a
    /// maintained pool index: only the Selective rule does (the Uniform
    /// rule must re-draw its per-page coins every query). Owners of a
    /// [`CorpusCache`] use this to decide whether pool maintenance is
    /// worth paying for — see [`CorpusCache::set_pool_maintained`].
    pub fn reads_pool_index(&self) -> bool {
        self.config.rule == PromotionRule::Selective
    }

    /// The canonical mapping from host-engine [`Document`]s to the
    /// [`PageStats`] the ranking layer consumes, written into `stats`
    /// (cleared first). Exposed so batch servers can build the snapshot
    /// once and serve many queries from it; every rerank path in this crate
    /// uses exactly this mapping.
    pub fn document_stats(documents: &[Document], stats: &mut Vec<PageStats>) {
        stats.clear();
        stats.extend(
            documents
                .iter()
                .enumerate()
                .map(|(slot, d)| Self::document_stat(slot, d)),
        );
    }

    /// The single-document unit of [`document_stats`](Self::document_stats):
    /// the `PageStats` entry for `document` occupying `slot`. Incremental
    /// servers use this to repair one cached snapshot entry after a store
    /// mutation instead of re-deriving all `n`.
    pub fn document_stat(slot: usize, document: &Document) -> PageStats {
        PageStats {
            slot,
            page: PageId::new(document.id),
            popularity: document.popularity.max(0.0),
            // Only the zero/non-zero distinction matters to the
            // selective rule.
            awareness: if document.is_unexplored { 0.0 } else { 1.0 },
            age_days: document.age_days,
            quality: 0.0,
        }
    }

    /// Re-rank `documents` for one query evaluation, returning input *slot*
    /// indices in final display order (rank 1 first). This is the primitive
    /// behind [`rerank`](Self::rerank) and
    /// [`rerank_documents`](Self::rerank_documents); use it when the host
    /// engine keeps its own per-slot payloads.
    pub fn rerank_slots(&self, documents: &[Document], context: QueryContext) -> Vec<usize> {
        let mut scratch = RerankScratch::new();
        let mut out = Vec::with_capacity(documents.len());
        self.rerank_slots_into(documents, context, &mut scratch, &mut out);
        out
    }

    /// [`rerank_slots`](Self::rerank_slots) through a reusable
    /// [`RerankScratch`], writing the ordering into `out` (cleared first).
    /// Allocation-free once the scratch has grown to the result-list size;
    /// output is byte-identical to `rerank_slots`.
    pub fn rerank_slots_into(
        &self,
        documents: &[Document],
        context: QueryContext,
        scratch: &mut RerankScratch,
        out: &mut Vec<usize>,
    ) {
        Self::document_stats(documents, &mut scratch.stats);
        let policy = self.policy();
        let mut rng = new_rng(context.seed(self.seed));
        policy.rank_into(&scratch.stats, &mut rng, &mut scratch.buffers, out);
    }

    /// Re-rank against a precomputed snapshot: `stats` built once by
    /// [`document_stats`](Self::document_stats) and `sorted` holding the
    /// slot indices in [`popularity_order`](rrp_ranking::popularity_order).
    /// This is the batch-serving fast path — the `O(n log n)` popularity
    /// sort is paid once per snapshot instead of once per query — and its
    /// output is byte-identical to [`rerank_slots`](Self::rerank_slots) on
    /// the same documents.
    pub fn rerank_presorted_slots_into(
        &self,
        stats: &[PageStats],
        sorted: &[usize],
        context: QueryContext,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        let policy = self.policy();
        let mut rng = new_rng(context.seed(self.seed));
        policy.rank_presorted_into(stats, sorted, &mut rng, buffers, out);
    }

    /// The top-`k` prefix of
    /// [`rerank_presorted_slots_into`](Self::rerank_presorted_slots_into):
    /// emit only the first `min(k, n)` ranks, stopping the coin-flip merge
    /// early. The output equals the length-`k` prefix of the full rerank
    /// bit for bit — real queries consume only the top of the ranking
    /// (the paper's rank-biased attention law), so serving tiers ask for
    /// one page of results instead of all `n`.
    pub fn rerank_top_k_presorted_slots_into(
        &self,
        stats: &[PageStats],
        sorted: &[usize],
        k: usize,
        context: QueryContext,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        let policy = self.policy();
        let mut rng = new_rng(context.seed(self.seed));
        policy.rank_top_k_presorted_into(stats, sorted, k, &mut rng, buffers, out);
    }

    /// [`rerank_presorted_slots_into`](Self::rerank_presorted_slots_into)
    /// against a persistent pool: the [`PoolView`] bundles the stats
    /// snapshot, its popularity order and a maintained
    /// [`PoolIndex`](rrp_ranking::PoolIndex), so the promotion pool is
    /// read off the index instead of re-derived by an `O(n)` scan + mask
    /// reset per query (the Uniform rule still draws its mandatory
    /// per-page coins). The index must be consistent with the stats
    /// (checked by a debug assertion in the ranking layer); output is
    /// byte-identical to the scanning path.
    pub fn rerank_pooled_slots_into(
        &self,
        view: PoolView<'_>,
        context: QueryContext,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        let policy = self.policy();
        let mut rng = new_rng(context.seed(self.seed));
        policy.rank_pooled_into(view, &mut rng, buffers, out);
    }

    /// The top-`k` prefix of
    /// [`rerank_pooled_slots_into`](Self::rerank_pooled_slots_into) — the
    /// truly `O(pool + k)` serving path: pool off the index, at most
    /// `pool + k` entries of the order touched, merge stopped at rank
    /// `k`, nothing per-corpus left on the query. Output equals the
    /// length-`k` prefix of the full rerank bit for bit.
    pub fn rerank_top_k_pooled_slots_into(
        &self,
        view: PoolView<'_>,
        k: usize,
        context: QueryContext,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        let policy = self.policy();
        let mut rng = new_rng(context.seed(self.seed));
        policy.rank_top_k_pooled_into(view, k, &mut rng, buffers, out);
    }

    /// [`rerank_pooled_slots_into`](Self::rerank_pooled_slots_into) read
    /// straight off a repaired [`CorpusCache`] — the one-call form for
    /// servers that keep the cache as their persistent serving state.
    pub fn rerank_cached_slots_into(
        &self,
        cache: &CorpusCache,
        context: QueryContext,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        self.rerank_pooled_slots_into(cache.view(), context, buffers, out);
    }

    /// The top-`k` prefix of the full rerank computed from **merged shard
    /// candidates** — the distributed serving path: per query each shard
    /// contributes only its pool members and a popularity-order prefix
    /// (collected off a [`ShardedCorpusCache`](crate::ShardedCorpusCache)),
    /// the deterministic merge reassembles the global pool and order
    /// prefix, and this call ranks against that view alone. No corpus-wide
    /// snapshot, order, or pool is consulted, yet the output (global
    /// slots) is bit-identical to the length-`k` prefix of
    /// [`rerank_cached_slots_into`](Self::rerank_cached_slots_into).
    ///
    /// # Panics
    /// Panics for Uniform-rule engines (their per-page coins require the
    /// whole corpus); gate on [`reads_pool_index`](Self::reads_pool_index).
    pub fn rerank_top_k_candidates_into(
        &self,
        candidates: &rrp_ranking::MergedCandidates,
        k: usize,
        context: QueryContext,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        let policy = self.policy();
        let mut rng = new_rng(context.seed(self.seed));
        policy.rank_top_k_candidates_into(candidates, k, &mut rng, buffers, out);
    }

    /// The primitive under
    /// [`rerank_top_k_candidates_into`](Self::rerank_top_k_candidates_into)
    /// for serving tiers whose pool half is *maintained* rather than
    /// re-merged per query (a
    /// [`ShardedCorpusCache`](crate::ShardedCorpusCache)'s
    /// [`pool_slots`](crate::ShardedCorpusCache::pool_slots)): `pool` is
    /// the global pool in pre-shuffle (ascending-slot) order, `rest` the
    /// first `min(k, available)` non-pool slots of the global popularity
    /// order. Same panics and the same RNG stream as the candidate form.
    pub fn rerank_top_k_retrieved_into(
        &self,
        pool: &[usize],
        rest: &[usize],
        k: usize,
        context: QueryContext,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        let policy = self.policy();
        let mut rng = new_rng(context.seed(self.seed));
        policy.rank_top_k_retrieved_into(pool, rest, k, &mut rng, buffers, out);
    }

    /// A **full rerank from merged shard state** — the single-tier serving
    /// path: `order` is the complete global popularity order reassembled
    /// by the deterministic shard merge (a
    /// [`ShardedCorpusCache`](crate::ShardedCorpusCache)'s
    /// [`merged_order`](crate::ShardedCorpusCache::merged_order)), `pool`
    /// the maintained global pool in pre-shuffle (ascending-slot) order
    /// and `in_pool` its membership predicate (both read only by the
    /// Selective rule; the Uniform rule draws its per-page coins over
    /// `0..order.len()` in slot order). No corpus-wide snapshot, order,
    /// or pool index is consulted, yet the output (global slots) is
    /// bit-identical to
    /// [`rerank_cached_slots_into`](Self::rerank_cached_slots_into) over
    /// the equivalent corpus-wide cache.
    pub fn rerank_merged_into(
        &self,
        pool: &[usize],
        order: &[usize],
        in_pool: impl Fn(usize) -> bool,
        context: QueryContext,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        let policy = self.policy();
        let mut rng = new_rng(context.seed(self.seed));
        policy.rank_merged_into(pool, order, in_pool, &mut rng, buffers, out);
    }

    /// The top-`k` prefix of
    /// [`rerank_merged_into`](Self::rerank_merged_into): merge stopped at
    /// rank `k`, `L_d` materialised only up to `k` entries. Unlike the
    /// candidate-retrieval path this serves Uniform-rule engines too —
    /// the complete merged order is corpus enough for their coins. Output
    /// equals the length-`k` prefix of the full rerank bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn rerank_top_k_merged_into(
        &self,
        pool: &[usize],
        order: &[usize],
        in_pool: impl Fn(usize) -> bool,
        k: usize,
        context: QueryContext,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        let policy = self.policy();
        let mut rng = new_rng(context.seed(self.seed));
        policy.rank_top_k_merged_into(pool, order, in_pool, k, &mut rng, buffers, out);
    }

    /// [`rerank_top_k_pooled_slots_into`](Self::rerank_top_k_pooled_slots_into)
    /// read straight off a repaired [`CorpusCache`].
    pub fn rerank_top_k_cached_slots_into(
        &self,
        cache: &CorpusCache,
        k: usize,
        context: QueryContext,
        buffers: &mut RankBuffers,
        out: &mut Vec<usize>,
    ) {
        self.rerank_top_k_pooled_slots_into(cache.view(), k, context, buffers, out);
    }

    /// Convenience wrapper: the first `min(k, n)` document ids of
    /// [`rerank`](Self::rerank), computed without materialising the full
    /// ranking. Builds a [`CorpusCache`] per call (one stats pass + sort +
    /// pool scan), then serves through the pooled `O(pool + k)` path —
    /// batch servers keep the cache alive across queries instead and pay
    /// none of the per-call derivation.
    pub fn rerank_top_k(
        &self,
        documents: &[Document],
        context: QueryContext,
        k: usize,
    ) -> Vec<u64> {
        let mut cache = CorpusCache::new();
        cache.set_pool_maintained(self.reads_pool_index());
        cache.rebuild(documents);
        let mut buffers = RankBuffers::new();
        let mut slots = Vec::with_capacity(k.min(documents.len()));
        self.rerank_top_k_cached_slots_into(&cache, k, context, &mut buffers, &mut slots);
        slots.into_iter().map(|slot| documents[slot].id).collect()
    }

    /// Re-rank `documents` for one query evaluation, returning document ids
    /// in final display order (rank 1 first).
    ///
    /// The input order does not matter; popularity and the unexplored flag
    /// drive the result. Duplicated ids are allowed (they are treated as
    /// distinct result slots).
    pub fn rerank(&self, documents: &[Document], context: QueryContext) -> Vec<u64> {
        self.rerank_slots(documents, context)
            .into_iter()
            .map(|slot| documents[slot].id)
            .collect()
    }

    /// Convenience wrapper: re-rank and return `(rank, document)` pairs.
    ///
    /// Pairs by result slot, not by id, so duplicated ids keep the same
    /// "distinct result slots" contract as [`rerank`](Self::rerank): each
    /// input document appears exactly once, at its promoted rank.
    pub fn rerank_documents<'a>(
        &self,
        documents: &'a [Document],
        context: QueryContext,
    ) -> Vec<(usize, &'a Document)> {
        self.rerank_slots(documents, context)
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| (idx + 1, &documents[slot]))
            .collect()
    }
}

impl Default for RankPromotionEngine {
    fn default() -> Self {
        RankPromotionEngine::recommended()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_ranking::PromotionRule;

    fn corpus() -> Vec<Document> {
        let mut docs: Vec<Document> = (0..20)
            .map(|i| Document::established(i, 1.0 - i as f64 * 0.04).with_age(100))
            .collect();
        docs.extend((20..30).map(Document::unexplored));
        docs
    }

    #[test]
    fn recommended_engine_protects_the_top_result() {
        let engine = RankPromotionEngine::recommended();
        for q in 0..50u64 {
            let order = engine.rerank(&corpus(), QueryContext::new(q, q * 31));
            assert_eq!(order[0], 0, "top result must never be perturbed with k=2");
            assert_eq!(order.len(), 30);
        }
    }

    #[test]
    fn output_is_a_permutation_of_input_ids() {
        let engine = RankPromotionEngine::recommended();
        let mut order = engine.rerank(&corpus(), QueryContext::new(1, 2));
        order.sort_unstable();
        let expected: Vec<u64> = (0..30).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn same_session_same_order_different_sessions_differ() {
        let engine = RankPromotionEngine::new(
            PromotionConfig::new(PromotionRule::Selective, 1, 0.5).unwrap(),
        );
        let ctx = QueryContext::from_strings("swimming", "alice");
        let a = engine.rerank(&corpus(), ctx);
        let b = engine.rerank(&corpus(), ctx);
        assert_eq!(a, b, "same query + session must be stable");
        let other = engine.rerank(&corpus(), QueryContext::from_strings("swimming", "bob"));
        assert_ne!(a, other, "different sessions should explore differently");
    }

    #[test]
    fn unexplored_documents_sometimes_reach_the_top_ten() {
        let engine = RankPromotionEngine::recommended();
        let mut promoted_in_top10 = 0;
        let trials = 200;
        for q in 0..trials {
            let order = engine.rerank(&corpus(), QueryContext::new(q, 7));
            if order.iter().take(10).any(|&id| id >= 20) {
                promoted_in_top10 += 1;
            }
        }
        // With r = 0.1 roughly one result in ten is promoted, so most
        // queries should show at least one unexplored document in the top
        // ten.
        assert!(
            promoted_in_top10 > trials / 3,
            "promoted docs reached the top ten in only {promoted_in_top10}/{trials} queries"
        );
    }

    #[test]
    fn zero_degree_engine_reduces_to_popularity_order() {
        let engine = RankPromotionEngine::new(
            PromotionConfig::new(PromotionRule::Selective, 1, 0.0).unwrap(),
        );
        let order = engine.rerank(&corpus(), QueryContext::new(3, 4));
        // Established documents keep strict popularity order at the top…
        let expected_head: Vec<u64> = (0..20).collect();
        assert_eq!(&order[..20], expected_head.as_slice());
        // …and with r = 0 the unexplored pool ends up at the bottom (in the
        // pool's random order, since the coin never selects it earlier).
        let mut tail: Vec<u64> = order[20..].to_vec();
        tail.sort_unstable();
        let expected_tail: Vec<u64> = (20..30).collect();
        assert_eq!(tail, expected_tail);
    }

    #[test]
    fn engine_seed_changes_the_shuffle() {
        let base = RankPromotionEngine::recommended().with_seed(1);
        let rotated = RankPromotionEngine::recommended().with_seed(2);
        let ctx = QueryContext::new(9, 9);
        assert_ne!(base.rerank(&corpus(), ctx), rotated.rerank(&corpus(), ctx));
        assert_eq!(base.config(), rotated.config());
    }

    #[test]
    fn rerank_documents_pairs_ranks_with_documents() {
        let engine = RankPromotionEngine::default();
        let docs = corpus();
        let ranked = engine.rerank_documents(&docs, QueryContext::new(0, 0));
        assert_eq!(ranked.len(), docs.len());
        assert_eq!(ranked[0].0, 1);
        assert_eq!(ranked[0].1.id, 0);
        assert_eq!(ranked.last().unwrap().0, docs.len());
    }

    #[test]
    fn empty_input_is_fine() {
        let engine = RankPromotionEngine::recommended();
        assert!(engine.rerank(&[], QueryContext::new(0, 0)).is_empty());
    }

    #[test]
    fn rerank_documents_keeps_duplicate_ids_as_distinct_slots() {
        // Two established results and one unexplored result share id 7 —
        // hosts may legitimately surface the same document id in several
        // result slots. Pairing by id used to collapse them onto one
        // &Document; pairing by slot must keep all three distinct.
        let docs = vec![
            Document::established(7, 0.9).with_age(50),
            Document::established(7, 0.3).with_age(10),
            Document::established(3, 0.6).with_age(30),
            Document::unexplored(7),
            Document::unexplored(9),
        ];
        let engine = RankPromotionEngine::new(
            PromotionConfig::new(PromotionRule::Selective, 1, 0.5).unwrap(),
        );
        let ranked = engine.rerank_documents(&docs, QueryContext::new(4, 2));

        assert_eq!(ranked.len(), docs.len(), "no slot may be dropped");
        let ranks: Vec<usize> = ranked.iter().map(|&(rank, _)| rank).collect();
        assert_eq!(ranks, vec![1, 2, 3, 4, 5]);
        // Every input slot appears exactly once: compare by address, since
        // ids are intentionally ambiguous.
        let mut seen: Vec<*const Document> =
            ranked.iter().map(|&(_, d)| d as *const Document).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            docs.len(),
            "duplicate ids must stay distinct slots"
        );
        // The slot order matches rerank()'s id order exactly.
        let ids: Vec<u64> = ranked.iter().map(|&(_, d)| d.id).collect();
        assert_eq!(ids, engine.rerank(&docs, QueryContext::new(4, 2)));
        // And the popularity-distinct duplicates keep their own payloads:
        // the 0.9-popularity copy of id 7 outranks the 0.3-popularity copy.
        let pos_of = |popularity: f64| {
            ranked
                .iter()
                .find(|&&(_, d)| d.id == 7 && (d.popularity - popularity).abs() < 1e-12)
                .map(|&(rank, _)| rank)
                .unwrap()
        };
        assert!(pos_of(0.9) < pos_of(0.3));
    }

    #[test]
    fn rerank_slots_is_the_common_primitive() {
        let docs = corpus();
        let ctx = QueryContext::new(11, 5);
        let engine = RankPromotionEngine::recommended();
        let slots = engine.rerank_slots(&docs, ctx);
        let ids: Vec<u64> = slots.iter().map(|&s| docs[s].id).collect();
        assert_eq!(ids, engine.rerank(&docs, ctx));
    }

    #[test]
    fn top_k_equals_the_full_rerank_prefix() {
        let docs = corpus();
        let engine = RankPromotionEngine::recommended().with_seed(21);
        let mut stats = Vec::new();
        RankPromotionEngine::document_stats(&docs, &mut stats);
        let mut sorted: Vec<usize> = (0..stats.len()).collect();
        sorted.sort_unstable_by(|&a, &b| rrp_ranking::popularity_order(&stats[a], &stats[b]));
        let mut buffers = RankBuffers::new();
        let mut slots = Vec::new();
        for q in 0..40u64 {
            let ctx = QueryContext::new(q, q.wrapping_mul(77));
            let full = engine.rerank(&docs, ctx);
            for k in [0usize, 1, 2, 5, 10, 30, 99] {
                let want = &full[..k.min(full.len())];
                assert_eq!(engine.rerank_top_k(&docs, ctx, k), want, "k={k}, q={q}");
                engine.rerank_top_k_presorted_slots_into(
                    &stats,
                    &sorted,
                    k,
                    ctx,
                    &mut buffers,
                    &mut slots,
                );
                let ids: Vec<u64> = slots.iter().map(|&s| docs[s].id).collect();
                assert_eq!(ids, want, "presorted k={k}, q={q}");
            }
        }
    }

    #[test]
    fn pooled_and_cached_paths_match_the_scanning_path() {
        let docs = corpus();
        let engine = RankPromotionEngine::recommended().with_seed(21);
        let mut cache = CorpusCache::new();
        cache.rebuild(&docs);
        let mut buffers = RankBuffers::new();
        let (mut scan, mut pooled) = (Vec::new(), Vec::new());
        for q in 0..40u64 {
            let ctx = QueryContext::new(q, q.wrapping_mul(77));
            engine.rerank_presorted_slots_into(
                cache.stats(),
                cache.order(),
                ctx,
                &mut buffers,
                &mut scan,
            );
            engine.rerank_cached_slots_into(&cache, ctx, &mut buffers, &mut pooled);
            assert_eq!(pooled, scan, "full pooled, q={q}");
            for k in [0usize, 1, 2, 5, 10, 30, 99] {
                engine.rerank_top_k_cached_slots_into(&cache, k, ctx, &mut buffers, &mut pooled);
                assert_eq!(pooled, scan[..k.min(scan.len())], "pooled k={k}, q={q}");
            }
        }
    }

    #[test]
    fn merged_paths_match_the_scanning_path_for_both_rules() {
        let docs = corpus();
        let engines = [
            RankPromotionEngine::recommended().with_seed(21),
            RankPromotionEngine::new(PromotionConfig::new(PromotionRule::Uniform, 1, 0.3).unwrap())
                .with_seed(21),
        ];
        for engine in engines {
            let mut cache = CorpusCache::new();
            cache.rebuild(&docs);
            let mut buffers = RankBuffers::new();
            let (mut scan, mut merged) = (Vec::new(), Vec::new());
            for q in 0..20u64 {
                let ctx = QueryContext::new(q, q.wrapping_mul(77));
                engine.rerank_presorted_slots_into(
                    cache.stats(),
                    cache.order(),
                    ctx,
                    &mut buffers,
                    &mut scan,
                );
                engine.rerank_merged_into(
                    cache.pool().members(),
                    cache.order(),
                    |s| cache.pool().contains(s),
                    ctx,
                    &mut buffers,
                    &mut merged,
                );
                assert_eq!(merged, scan, "full merged, q={q}");
                for k in [0usize, 1, 2, 5, 10, 30, 99] {
                    engine.rerank_top_k_merged_into(
                        cache.pool().members(),
                        cache.order(),
                        |s| cache.pool().contains(s),
                        k,
                        ctx,
                        &mut buffers,
                        &mut merged,
                    );
                    assert_eq!(merged, scan[..k.min(scan.len())], "merged k={k}, q={q}");
                }
            }
        }
    }

    #[test]
    fn version_defaults_to_v1_and_threads_through_every_top_k_path() {
        let docs = corpus();
        let v1 = RankPromotionEngine::recommended().with_seed(21);
        assert_eq!(v1.version(), EngineVersion::V1);
        let v2 = v1.with_version(EngineVersion::V2);
        assert_eq!(v2.version(), EngineVersion::V2);
        assert_eq!(v2.config(), v1.config());

        let mut cache = CorpusCache::new();
        cache.rebuild(&docs);
        let mut buffers = RankBuffers::new();
        let (mut pooled, mut merged) = (Vec::new(), Vec::new());
        let mut diverged = false;
        for q in 0..20u64 {
            let ctx = QueryContext::new(q, q.wrapping_mul(77));
            // Full reranks are version-independent…
            assert_eq!(v2.rerank(&docs, ctx), v1.rerank(&docs, ctx), "full, q={q}");
            // …and every v2 top-k route draws the same lazy stream.
            let k = 8;
            let top = v2.rerank_top_k(&docs, ctx, k);
            v2.rerank_top_k_cached_slots_into(&cache, k, ctx, &mut buffers, &mut pooled);
            let pooled_ids: Vec<u64> = pooled.iter().map(|&s| docs[s].id).collect();
            assert_eq!(pooled_ids, top, "cached≡rerank_top_k, q={q}");
            v2.rerank_top_k_merged_into(
                cache.pool().members(),
                cache.order(),
                |s| cache.pool().contains(s),
                k,
                ctx,
                &mut buffers,
                &mut merged,
            );
            assert_eq!(merged, pooled, "merged≡cached, q={q}");
            if top != v1.rerank_top_k(&docs, ctx, k) {
                diverged = true;
            }
        }
        assert!(diverged, "v2 must draw a genuinely different top-k stream");
    }

    #[test]
    fn serialized_engines_without_a_version_deserialize_to_v1() {
        let engine = RankPromotionEngine::recommended()
            .with_seed(9)
            .with_version(EngineVersion::V2);
        let json = serde_json::to_string(&engine).unwrap();
        let back: RankPromotionEngine = serde_json::from_str(&json).unwrap();
        assert_eq!(back, engine, "explicit versions round-trip");

        // A pre-versioning payload carries no `version` field at all: it
        // must deserialize to v1, keeping its recorded goldens valid.
        let legacy = serde_json::to_string(&RankPromotionEngine::recommended().with_seed(9))
            .unwrap()
            .replace(",\"version\":\"V1\"", "");
        assert!(!legacy.contains("version"), "legacy payload: {legacy}");
        let back: RankPromotionEngine = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.version(), EngineVersion::V1);
        assert_eq!(back.seed(), 9);
    }

    #[test]
    fn document_stat_is_the_unit_of_document_stats() {
        let docs = corpus();
        let mut stats = Vec::new();
        RankPromotionEngine::document_stats(&docs, &mut stats);
        for (slot, d) in docs.iter().enumerate() {
            assert_eq!(stats[slot], RankPromotionEngine::document_stat(slot, d));
        }
    }

    #[test]
    fn scratch_and_presorted_paths_match_the_allocating_path() {
        let docs = corpus();
        let engine = RankPromotionEngine::recommended().with_seed(3);

        // Snapshot built once, as a batch server would.
        let mut stats = Vec::new();
        RankPromotionEngine::document_stats(&docs, &mut stats);
        let mut sorted: Vec<usize> = (0..stats.len()).collect();
        sorted.sort_unstable_by(|&a, &b| rrp_ranking::popularity_order(&stats[a], &stats[b]));

        let mut scratch = RerankScratch::with_capacity(docs.len());
        let mut buffers = RankBuffers::new();
        let mut out = Vec::new();
        for q in 0..50u64 {
            let ctx = QueryContext::new(q, q ^ 0xABCD);
            let expected = engine.rerank_slots(&docs, ctx);

            engine.rerank_slots_into(&docs, ctx, &mut scratch, &mut out);
            assert_eq!(out, expected, "scratch path, query {q}");

            engine.rerank_presorted_slots_into(&stats, &sorted, ctx, &mut buffers, &mut out);
            assert_eq!(out, expected, "presorted path, query {q}");
        }
        assert_eq!(engine.seed(), 3);
    }
}
