//! Per-shard ranking caches with shard-local dirty lists — the storage
//! side of shard-local top-k candidate retrieval.
//!
//! Where [`CorpusCache`] keeps one corpus-wide snapshot current,
//! [`ShardedCorpusCache`] keeps one `CorpusCache` **per shard**, each over
//! that shard's documents under dense *shard-local* slots, with a
//! shard-local dirty list repaired independently. A top-`k` query then
//! never touches corpus-wide ranking state: each shard contributes a
//! [`ShardCandidates`] rest prefix (its first `c` non-pool
//! popularity-order entries, slots relabeled to the documents' global
//! slots),
//! [`merge_shard_candidates_into`](rrp_ranking::merge_shard_candidates_into)
//! reassembles exactly the global order prefix the promotion merge
//! consumes, and the **merged global pool** — which moves only when a
//! mutation flips a slot's membership, never with the query — is
//! maintained here across queries ([`pool_slots`](Self::pool_slots)),
//! re-merged from the shard pools at repair time exactly as
//! `merge_shard_candidates_into` would merge per-query pool candidates.
//!
//! Full reranks (and the Uniform rule's per-page coin scan) are served
//! from the same shard-local state: the **complete** merged global
//! popularity order
//! ([`merge_shard_orders_into`](rrp_ranking::merge_shard_orders_into)) is
//! maintained lazily — repairs mark it stale, the next full-order read
//! re-merges once ([`ensure_merged_order`](ShardedCorpusCache::ensure_merged_order))
//! — so there is exactly one tier of serving state at every query shape.
//!
//! The local↔global mapping rides on two invariants the owner must keep
//! (both debug-asserted):
//!
//! * global slots are dense across the whole cache (`0..len`, each pushed
//!   exactly once) — they are the store's global sequence numbers; and
//! * within a shard, global slots ascend with local slots (inserts are
//!   globally ordered), which is what makes a shard-local popularity
//!   order agree with the global order's slot tie-break after relabeling.

use crate::cache::CorpusCache;
use crate::document::Document;
use rrp_model::PageId;
use rrp_ranking::ShardCandidates;
use serde::{Deserialize, Serialize};

/// One shard's slice of the corpus: its cache under dense local slots plus
/// the local→global slot map.
#[derive(Debug, Default, Serialize, Deserialize)]
struct ShardCache {
    cache: CorpusCache,
    /// Local slot → global slot, strictly increasing.
    globals: Vec<usize>,
}

/// Per-shard [`CorpusCache`]s repaired from shard-local dirty lists, with
/// `O(1)` global-slot addressing for mutations and a maintained merge of
/// the shard pools.
#[derive(Debug, Serialize, Deserialize)]
pub struct ShardedCorpusCache {
    shards: Vec<ShardCache>,
    /// Global slot → (shard, local slot).
    placement: Vec<(u32, u32)>,
    /// Global slot → [`PageId`], maintained eagerly (append on push,
    /// rewrite on patch) so the merged-order serving paths resolve ranked
    /// slots to ids by direct indexing instead of a placement double
    /// indirection per slot.
    pages: Vec<PageId>,
    /// Global slot → pool membership, maintained eagerly alongside the
    /// shard stats (stats are patched eagerly too, so by the time the
    /// [`in_pool`](Self::in_pool) contract holds — after a repair — this
    /// mask equals every shard pool's repaired membership). All `false`
    /// while pool maintenance is off, matching the empty shard pools.
    pool_mask: Vec<bool>,
    /// The merged global pool under global slots, ascending — the
    /// pre-shuffle pool order every top-k query shuffles. Maintained at
    /// repair time (membership only moves when a mutation dirties a
    /// slot), so queries between repairs reuse it instead of re-merging
    /// `O(pool)` state each.
    merged_pool: Vec<usize>,
    /// The **complete** merged global popularity order (global slots) —
    /// what a full rerank and the Uniform rule's per-page coin scan
    /// consume instead of any corpus-wide snapshot. Re-merged *lazily*:
    /// [`repair`](Self::repair) only marks it stale, and
    /// [`ensure_merged_order`](Self::ensure_merged_order) re-merges on the
    /// next read, so top-k-only traffic never pays the `O(n)` merge.
    merged_order: Vec<usize>,
    /// Whether `merged_order` must be re-merged before its next read.
    merged_order_stale: bool,
    /// Scratch: per-shard cursors for the repair-time pool merge.
    #[serde(skip)]
    merge_heads: Vec<usize>,
}

impl ShardedCorpusCache {
    /// An empty cache over `shard_count` shards (at least 1).
    pub fn new(shard_count: usize) -> Self {
        let mut shards = Vec::new();
        shards.resize_with(shard_count.max(1), ShardCache::default);
        ShardedCorpusCache {
            shards,
            placement: Vec::new(),
            pages: Vec::new(),
            pool_mask: Vec::new(),
            merged_pool: Vec::new(),
            merged_order: Vec::new(),
            merged_order_stale: false,
            merge_heads: Vec::new(),
        }
    }

    /// Enable or disable pool maintenance on every shard cache (see
    /// [`CorpusCache::set_pool_maintained`]); candidate retrieval requires
    /// it on.
    pub fn set_pool_maintained(&mut self, maintained: bool) {
        for shard in &mut self.shards {
            shard.cache.set_pool_maintained(maintained);
        }
        // The global membership mask mirrors the shard pools, so it
        // follows the flag: recompute from the eagerly-patched stats
        // (all `false` when maintenance is off — unmaintained pools are
        // empty).
        for global in 0..self.pool_mask.len() {
            let (shard, local) = self.placement[global];
            self.pool_mask[global] = maintained
                && self.shards[shard as usize].cache.stats()[local as usize].is_unexplored();
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of cached documents.
    #[inline]
    pub fn len(&self) -> usize {
        self.placement.len()
    }

    /// Whether the cache holds no documents.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.placement.is_empty()
    }

    /// Dirty entries awaiting repair, summed over the shard-local lists.
    pub fn dirty_len(&self) -> usize {
        self.shards.iter().map(|s| s.cache.dirty_len()).sum()
    }

    /// Append the document occupying the next global slot to `shard`
    /// (`O(1)`). Global slots are assigned densely in push order — they
    /// are the store's global sequence numbers — so within a shard they
    /// ascend with local slots.
    pub fn push(&mut self, shard: usize, document: &Document) {
        debug_assert!(shard < self.shards.len());
        let maintained = self.pool_maintained();
        let global_slot = self.placement.len();
        let local = self.shards[shard].globals.len();
        self.placement.push((shard as u32, local as u32));
        self.pages.push(PageId::new(document.id));
        self.pool_mask.push(maintained && document.is_unexplored);
        self.shards[shard].globals.push(global_slot);
        self.shards[shard].cache.push(document);
    }

    /// Patch the cached stats of the document at `global_slot` after a
    /// mutation, marking exactly its shard-local slot dirty (`O(1)`).
    pub fn patch(&mut self, global_slot: usize, document: &Document) {
        let maintained = self.pool_maintained();
        let (shard, local) = self.placement[global_slot];
        self.shards[shard as usize]
            .cache
            .patch(local as usize, document);
        self.pages[global_slot] = PageId::new(document.id);
        self.pool_mask[global_slot] = maintained && document.is_unexplored;
    }

    /// Repair every shard cache that has dirty slots and re-merge the
    /// global pool, returning the total number of dirty entries handed to
    /// the repairs (distinct slots per shard). Shards with a clean dirty list
    /// skip their index repairs; the pool re-merge runs whenever anything
    /// was dirty (`O(pool)` — the same class as one shard-pool repair,
    /// and amortised over every query until the next mutation).
    pub fn repair(&mut self) -> u64 {
        let handed: u64 = self.shards.iter_mut().map(|s| s.cache.repair()).sum();
        if handed > 0 {
            self.merge_pools();
            self.merged_order_stale = true;
        }
        debug_assert!(
            {
                let from_mask: Vec<usize> = (0..self.pool_mask.len())
                    .filter(|&s| self.pool_mask[s])
                    .collect();
                from_mask == self.merged_pool
            },
            "the eager membership mask must equal the re-merged global pool"
        );
        handed
    }

    /// The merged global pool: every shard's pool members under global
    /// slots, ascending — identical in content and order to a corpus-wide
    /// [`PoolIndex::members`](rrp_ranking::PoolIndex::members), kept
    /// current by [`repair`](Self::repair).
    #[inline]
    pub fn pool_slots(&self) -> &[usize] {
        &self.merged_pool
    }

    /// The [`PageId`] of the document at `global_slot` — one direct vec
    /// index, no placement indirection: this sits on the per-slot hot loop
    /// of every merged-order serving path.
    #[inline]
    pub fn page_of(&self, global_slot: usize) -> PageId {
        self.pages[global_slot]
    }

    /// The cached [`PageStats`](rrp_ranking::PageStats) of the document at
    /// `global_slot`, relabeled to its global slot (`O(1)`).
    #[inline]
    pub fn stat_of(&self, global_slot: usize) -> rrp_ranking::PageStats {
        let (shard, local) = self.placement[global_slot];
        let mut stat = self.shards[shard as usize].cache.stats()[local as usize];
        stat.slot = global_slot;
        stat
    }

    /// Whether `global_slot` is a member of its shard's promotion pool —
    /// one direct mask index, no placement indirection: the membership
    /// predicate the merged full-rerank path filters the global order
    /// through, once per slot. Requires maintained pools and a preceding
    /// [`repair`](Self::repair) (the repair debug-asserts this mask
    /// against the re-merged global pool).
    #[inline]
    pub fn in_pool(&self, global_slot: usize) -> bool {
        self.pool_mask[global_slot]
    }

    /// Whether pool maintenance is enabled on the shard caches (see
    /// [`set_pool_maintained`](Self::set_pool_maintained)).
    pub fn pool_maintained(&self) -> bool {
        self.shards
            .first()
            .is_some_and(|s| s.cache.pool_maintained())
    }

    /// The complete merged global popularity order (global slots), kept
    /// current by [`ensure_merged_order`](Self::ensure_merged_order) —
    /// identical in content and order to a corpus-wide
    /// [`PopularityIndex::order`](rrp_ranking::PopularityIndex::order).
    #[inline]
    pub fn merged_order(&self) -> &[usize] {
        debug_assert!(!self.merged_order_stale, "read of a stale merged order");
        &self.merged_order
    }

    /// Re-merge the complete global popularity order if a repair left it
    /// stale, returning whether a merge actually ran (the owner's
    /// `order_merges` probe counts these — steady-state traffic between
    /// mutations pays zero). Requires a preceding [`repair`](Self::repair)
    /// (debug-asserted: the shard orders being merged must be clean).
    pub fn ensure_merged_order(&mut self) -> bool {
        if !self.merged_order_stale && self.merged_order.len() == self.len() {
            return false;
        }
        debug_assert_eq!(self.dirty_len(), 0, "merge of an unrepaired shard order");
        let ShardedCorpusCache {
            shards,
            merged_order,
            merge_heads,
            ..
        } = self;
        rrp_ranking::merge_shard_orders_into(
            shards.len(),
            |s| shards[s].globals.len(),
            |s, i| {
                let shard = &shards[s];
                let local = shard.cache.order()[i];
                let mut stat = shard.cache.stats()[local];
                stat.slot = shard.globals[local];
                stat
            },
            merge_heads,
            merged_order,
        );
        self.merged_order_stale = false;
        debug_assert_eq!(self.merged_order.len(), self.len());
        debug_assert!(
            self.merged_order.windows(2).all(|w| {
                rrp_ranking::popularity_order(&self.stat_of(w[0]), &self.stat_of(w[1])).is_lt()
            }),
            "merged order must be the global popularity order"
        );
        true
    }

    /// Re-merge the shard pools into the maintained global pool — the
    /// *same* ascending-slot k-way merge the per-query candidate path
    /// runs ([`merge_ascending_slots_into`](rrp_ranking::merge_ascending_slots_into)),
    /// executed once per repair instead of once per query.
    fn merge_pools(&mut self) {
        let shards = &self.shards;
        rrp_ranking::merge_ascending_slots_into(
            shards.len(),
            |s| shards[s].cache.pool().len(),
            |s, i| shards[s].globals[shards[s].cache.pool().members()[i]],
            &mut self.merge_heads,
            &mut self.merged_pool,
        );
    }

    /// Collect every shard's per-query top-`k` rest candidates into `out`
    /// (resized to the shard count; inner storage reused): the first
    /// `limit` non-pool entries of each shard's popularity order, slots
    /// rewritten to global slots — `O(limit)` per shard past any pool
    /// members sitting above the cut. The pool half comes from
    /// [`pool_slots`](Self::pool_slots). Requires maintained pools and a
    /// preceding [`repair`](Self::repair).
    pub fn collect_rest_candidates(&self, limit: usize, out: &mut Vec<ShardCandidates>) {
        out.resize_with(self.shards.len(), ShardCandidates::new);
        for (shard, candidates) in self.shards.iter().zip(out.iter_mut()) {
            candidates.collect_rest(shard.cache.view(), limit, &shard.globals);
        }
    }

    /// [`collect_rest_candidates`](Self::collect_rest_candidates) with the
    /// pool halves included — the self-contained per-query form the merge
    /// goldens pin; serving tiers use the rest-only form plus the
    /// maintained [`pool_slots`](Self::pool_slots) instead.
    pub fn collect_candidates(&self, limit: usize, out: &mut Vec<ShardCandidates>) {
        out.resize_with(self.shards.len(), ShardCandidates::new);
        for (shard, candidates) in self.shards.iter().zip(out.iter_mut()) {
            candidates.collect(shard.cache.view(), limit, &shard.globals);
        }
    }

    /// Discard everything and start over with the same shard count and
    /// pool-maintenance setting — the first half of a rebuild; the owner
    /// then replays every document through [`push`](Self::push) in global
    /// order and calls [`repair`](Self::repair).
    pub fn clear(&mut self) {
        let maintained = self
            .shards
            .first()
            .is_some_and(|s| s.cache.pool_maintained());
        for shard in self.shards.iter_mut() {
            *shard = ShardCache::default();
            shard.cache.set_pool_maintained(maintained);
        }
        self.placement.clear();
        self.pages.clear();
        self.pool_mask.clear();
        self.merged_pool.clear();
        self.merged_order.clear();
        self.merged_order_stale = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_ranking::{merge_shard_candidates_into, MergedCandidates, PoolIndex, PopularityIndex};

    fn documents(n: u64) -> Vec<Document> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    Document::unexplored(i)
                } else {
                    Document::established(i, 1.0 - (i % 11) as f64 * 0.05).with_age(i % 6)
                }
            })
            .collect()
    }

    /// Route like a store would: any deterministic id hash works, the
    /// invariants only need per-shard ascending global slots.
    fn shard_of(id: u64, shards: usize) -> usize {
        (id as usize * 7 + 1) % shards
    }

    fn filled(docs: &[Document], shards: usize) -> ShardedCorpusCache {
        let mut cache = ShardedCorpusCache::new(shards);
        for doc in docs {
            cache.push(shard_of(doc.id, shards), doc);
        }
        cache
    }

    /// The corpus-wide reference: global stats, order, and pool.
    fn global_reference(docs: &[Document]) -> (PopularityIndex, PoolIndex) {
        let mut stats = Vec::new();
        crate::engine::RankPromotionEngine::document_stats(docs, &mut stats);
        (PopularityIndex::build(&stats), PoolIndex::build(&stats))
    }

    fn expected_rest(order: &PopularityIndex, pool: &PoolIndex, limit: usize) -> Vec<usize> {
        order
            .order()
            .iter()
            .copied()
            .filter(|&s| !pool.contains(s))
            .take(limit)
            .collect()
    }

    #[test]
    fn merged_candidates_equal_the_corpus_wide_derivation() {
        let docs = documents(60);
        let (order, pool) = global_reference(&docs);
        for shards in [1usize, 2, 3, 8] {
            let mut cache = filled(&docs, shards);
            assert_eq!(cache.len(), 60);
            assert_eq!(cache.shard_count(), shards);
            cache.repair();

            // The maintained merged pool is the corpus-wide pool.
            assert_eq!(cache.pool_slots(), pool.members(), "{shards} shards");

            // And the self-contained per-query collection merges to the
            // same pool plus the corpus-wide non-pool prefix.
            let mut candidates = Vec::new();
            cache.collect_candidates(7, &mut candidates);
            let mut merged = MergedCandidates::new();
            merge_shard_candidates_into(&candidates, 7, &mut merged);
            assert_eq!(merged.pool(), pool.members(), "{shards} shards");
            let rest_slots: Vec<usize> = merged.rest().iter().map(|p| p.slot).collect();
            assert_eq!(
                rest_slots,
                expected_rest(&order, &pool, 7),
                "{shards} shards"
            );

            // The rest-only serving collection yields the same prefix.
            cache.collect_rest_candidates(7, &mut candidates);
            merge_shard_candidates_into(&candidates, 7, &mut merged);
            assert!(merged.pool().is_empty());
            let rest_slots: Vec<usize> = merged.rest().iter().map(|p| p.slot).collect();
            assert_eq!(
                rest_slots,
                expected_rest(&order, &pool, 7),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn patches_flow_through_the_shard_local_dirty_lists() {
        let mut docs = documents(40);
        let mut cache = filled(&docs, 4);
        cache.repair();
        assert_eq!(cache.dirty_len(), 0);

        docs[0].is_unexplored = false; // slot 0 leaves the pool
        cache.patch(0, &docs[0]);
        docs[7].popularity = 3.0; // slot 7 moves to the top of the order
        cache.patch(7, &docs[7]);
        docs.push(Document::unexplored(99)); // slot 40 joins the pool
        cache.push(shard_of(99, 4), docs.last().unwrap());
        assert_eq!(cache.dirty_len(), 3);
        assert_eq!(cache.repair(), 3);

        let (order, pool) = global_reference(&docs);
        assert_eq!(cache.pool_slots(), pool.members());
        assert!(!cache.pool_slots().contains(&0));
        assert!(cache.pool_slots().contains(&40));
        let mut candidates = Vec::new();
        cache.collect_rest_candidates(5, &mut candidates);
        let mut merged = MergedCandidates::new();
        merge_shard_candidates_into(&candidates, 5, &mut merged);
        let rest_slots: Vec<usize> = merged.rest().iter().map(|p| p.slot).collect();
        assert_eq!(rest_slots[0], 7, "the boosted slot leads the order");
        assert_eq!(rest_slots, expected_rest(&order, &pool, 5));
    }

    #[test]
    fn merged_order_equals_the_corpus_wide_popularity_order() {
        let mut docs = documents(60);
        let (order, _) = global_reference(&docs);
        for shards in [1usize, 2, 3, 8] {
            let mut cache = filled(&docs, shards);
            cache.repair();
            assert!(cache.ensure_merged_order(), "first read merges");
            assert_eq!(cache.merged_order(), order.order(), "{shards} shards");
            assert!(
                !cache.ensure_merged_order(),
                "clean order must not re-merge"
            );
        }

        // Mutations repair into a stale order; the next read re-merges to
        // the fresh corpus-wide derivation, and only that read pays.
        let mut cache = filled(&docs, 4);
        cache.repair();
        cache.ensure_merged_order();
        docs[5].popularity = 4.0;
        cache.patch(5, &docs[5]);
        docs.push(Document::unexplored(77));
        cache.push(shard_of(77, 4), docs.last().unwrap());
        cache.repair();
        assert!(cache.ensure_merged_order(), "repair leaves the order stale");
        let (order, _) = global_reference(&docs);
        assert_eq!(cache.merged_order(), order.order());
        assert_eq!(cache.merged_order()[0], 5, "the boosted slot leads");
        assert!(!cache.ensure_merged_order());
    }

    #[test]
    fn stat_of_and_in_pool_resolve_through_the_placement_map() {
        let docs = documents(30);
        let mut cache = filled(&docs, 3);
        cache.repair();
        let mut stats = Vec::new();
        crate::engine::RankPromotionEngine::document_stats(&docs, &mut stats);
        for (slot, stat) in stats.iter().enumerate() {
            assert_eq!(cache.stat_of(slot), *stat);
            assert_eq!(cache.in_pool(slot), docs[slot].is_unexplored);
        }
        assert!(cache.pool_maintained());
    }

    #[test]
    fn page_of_resolves_ids_through_the_owning_shard() {
        let docs = documents(25);
        let mut cache = filled(&docs, 3);
        cache.repair();
        for (slot, doc) in docs.iter().enumerate() {
            assert_eq!(cache.page_of(slot), PageId::new(doc.id));
        }
    }

    #[test]
    fn eager_membership_mask_tracks_mutations_and_the_maintenance_flag() {
        let mut docs = documents(30);
        let mut cache = filled(&docs, 3);
        cache.repair();
        // Push/patch keep the direct-index mask equal to a fresh scan.
        docs[0].is_unexplored = false; // slot 0 (unexplored) leaves
        cache.patch(0, &docs[0]);
        docs[1].is_unexplored = true; // slot 1 (established) joins
        docs[1].popularity = 0.0;
        cache.patch(1, &docs[1]);
        docs.push(Document::unexplored(80)); // slot 30 joins
        cache.push(shard_of(80, 3), docs.last().unwrap());
        cache.repair(); // debug-asserts mask ≡ re-merged global pool
        for (slot, doc) in docs.iter().enumerate() {
            assert_eq!(cache.in_pool(slot), doc.is_unexplored, "slot {slot}");
            assert_eq!(cache.page_of(slot), PageId::new(doc.id), "slot {slot}");
        }
        // Turning maintenance off empties the mask (unmaintained pools are
        // empty); turning it back on recomputes from the patched stats.
        cache.set_pool_maintained(false);
        assert!((0..docs.len()).all(|s| !cache.in_pool(s)));
        cache.set_pool_maintained(true);
        cache.repair();
        for (slot, doc) in docs.iter().enumerate() {
            assert_eq!(cache.in_pool(slot), doc.is_unexplored, "slot {slot}");
        }
    }

    #[test]
    fn clear_keeps_shape_and_pool_setting_for_a_replay() {
        let docs = documents(20);
        let mut cache = filled(&docs, 3);
        cache.set_pool_maintained(false);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.shard_count(), 3);
        assert!(cache.pool_slots().is_empty());
        for doc in &docs {
            cache.push(shard_of(doc.id, 3), doc);
        }
        cache.repair();
        assert_eq!(cache.len(), docs.len());
        // Pool maintenance stayed off across the clear (candidate
        // retrieval is gated on it, so the setting must survive a replay).
        assert!(cache.shards.iter().all(|s| !s.cache.pool_maintained()));
    }

    /// The PR 4 `is_unexplored` tripwire, at the shard tier: mutating a
    /// document's awareness *without* routing the mutation through
    /// [`ShardedCorpusCache::patch`] leaves that shard's pool index stale,
    /// and the membership debug assertion inside the next shard-local
    /// repair catches it instead of silently serving a drifted pool.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "is_consistent")]
    fn unmarked_shard_local_mutation_trips_the_membership_assertion() {
        let mut docs = documents(12);
        let mut cache = filled(&docs, 3);
        cache.repair();

        // Visit the unexplored slot 0 behind the cache's back (no dirty
        // mark), then dirty the *same shard* through a legitimate patch:
        // slots 0 and 3 both route to shard `shard_of(0, 3)`, so the next
        // repair runs on the drifted shard and its membership assertion
        // fires.
        assert_eq!(shard_of(0, 3), shard_of(3, 3));
        docs[0].is_unexplored = false;
        let (shard, local) = cache.placement[0];
        let stat = crate::engine::RankPromotionEngine::document_stat(local as usize, &docs[0]);
        cache.shards[shard as usize].cache.stats_mut_unmarked()[local as usize] = stat;
        docs[3].popularity = 0.9;
        cache.patch(3, &docs[3]);
        cache.repair();
    }
}
