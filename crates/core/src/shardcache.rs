//! Per-shard ranking caches split into a writer generation and published
//! read-only versions — the storage side of shard-local top-k candidate
//! retrieval under concurrent readers.
//!
//! Where [`CorpusCache`] keeps one corpus-wide snapshot current,
//! [`ShardedCorpusCache`] keeps one `CorpusCache` **per shard**, each over
//! that shard's documents under dense *shard-local* slots, with a
//! shard-local dirty list repaired independently. A top-`k` query then
//! never touches corpus-wide ranking state: each shard contributes a
//! [`ShardCandidates`] rest prefix (its first `c` non-pool
//! popularity-order entries, slots relabeled to the documents' global
//! slots),
//! [`merge_shard_candidates_into`](rrp_ranking::merge_shard_candidates_into)
//! reassembles exactly the global order prefix the promotion merge
//! consumes, and the **merged global pool** — which moves only when a
//! mutation flips a slot's membership, never with the query — is
//! maintained across queries, re-merged from the shard pools at
//! publication time.
//!
//! # Epoch-versioned publication
//!
//! Since the concurrent-serving change, the cache is *two* generations of
//! the same state:
//!
//! * the **writer generation** — the `Arc`-held buffers this struct
//!   mutates in place through [`push`](ShardedCorpusCache::push) /
//!   [`patch`](ShardedCorpusCache::patch), exactly the old single-owner
//!   repair discipline; and
//! * the **published version** ([`PublishedVersion`]) — an immutable,
//!   epoch-stamped snapshot cut by [`publish`](ShardedCorpusCache::publish):
//!   the writer repairs its dirty slots, then shares its (now clean)
//!   buffers into the version by `Arc` clone. Readers rank against a
//!   version without any lock; clean shards are shared between consecutive
//!   versions, never copied.
//!
//! Publication stays `O(dirty)`, not `O(n)`, through **buffer
//! recycling**: the cache keeps a *diff log* of every global slot mutated
//! since the last publication, and when a version retires
//! ([`recycle`](ShardedCorpusCache::recycle)) its uniquely-held buffers
//! are reclaimed and caught up by replaying exactly that diff — the
//! retired generation is one publication behind, so the diff is precisely
//! what it is missing. If a straggling reader still holds the retired
//! version, recycling is skipped and the next mutation falls back to
//! copy-on-write (`Arc::make_mut`) — correct at any interleaving, merely
//! paying a one-time copy.
//!
//! Full reranks (and the Uniform rule's per-page coin scan) are served
//! from the version's **complete** merged global popularity order
//! ([`merge_shard_orders_into`](rrp_ranking::merge_shard_orders_into)),
//! maintained lazily per version in a [`SharedLazyOrder`]: the first
//! full-order consumer of a version merges once, top-k-only traffic never
//! pays the `O(n)` merge, and the order's storage is recycled from the
//! retired version — the old `ensure_merged_order` cadence, generalised
//! to shared readers.
//!
//! The local↔global mapping rides on two invariants the owner must keep
//! (both debug-asserted):
//!
//! * global slots are dense across the whole cache (`0..len`, each pushed
//!   exactly once) — they are the store's global sequence numbers; and
//! * within a shard, global slots ascend with local slots (inserts are
//!   globally ordered), which is what makes a shard-local popularity
//!   order agree with the global order's slot tie-break after relabeling.

use crate::cache::CorpusCache;
use crate::document::Document;
use rrp_model::PageId;
use rrp_ranking::{ShardCandidates, SharedLazyOrder};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One shard's slice of the corpus: its cache under dense local slots plus
/// the local→global slot map. Both live behind `Arc`s so publication can
/// share them into an immutable [`PublishedVersion`] without copying.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardCache {
    cache: Arc<CorpusCache>,
    /// Local slot → global slot, strictly increasing.
    globals: Arc<Vec<usize>>,
}

impl Default for ShardCache {
    fn default() -> Self {
        ShardCache {
            cache: Arc::new(CorpusCache::new()),
            globals: Arc::new(Vec::new()),
        }
    }
}

/// One shard of a [`PublishedVersion`]: the shard's repaired cache and its
/// local→global map, shared by `Arc` with the writer generation that cut
/// the version (and with neighbouring versions while the shard is clean).
#[derive(Debug)]
struct PublishedShard {
    cache: Arc<CorpusCache>,
    globals: Arc<Vec<usize>>,
}

/// An immutable, epoch-stamped snapshot of the whole serving tier: per-
/// shard repaired caches, the global placement/page/membership arrays, the
/// merged global pool, and a lazily merged complete global order. Cut by
/// [`ShardedCorpusCache::publish`]; safe to read from any number of
/// threads without a lock. The `epoch` records which mutation epoch the
/// snapshot serves — readers validate it at merge time against the live
/// epoch counter to detect (and bound) staleness.
#[derive(Debug)]
pub struct PublishedVersion {
    epoch: u64,
    pool_maintained: bool,
    shards: Vec<PublishedShard>,
    /// Global slot → (shard, local slot).
    placement: Arc<Vec<(u32, u32)>>,
    /// Global slot → [`PageId`] — resolves ranked slots to ids by direct
    /// indexing on the per-slot hot loop.
    pages: Arc<Vec<PageId>>,
    /// Global slot → pool membership (all `false` while maintenance is
    /// off, matching the empty shard pools).
    pool_mask: Arc<Vec<bool>>,
    /// The merged global pool under global slots, ascending — the
    /// pre-shuffle pool order every top-k query shuffles.
    merged_pool: Arc<Vec<usize>>,
    /// The complete merged global popularity order, merged at most once
    /// per version by its first full-order consumer.
    merged_order: SharedLazyOrder,
}

impl PublishedVersion {
    /// The empty version at epoch 0 — what a service publishes before any
    /// mutation exists. An empty corpus never republishes: inserts are the
    /// only path to a non-empty one, and they bump the epoch.
    pub fn empty(shard_count: usize, pool_maintained: bool) -> Self {
        let shards = (0..shard_count.max(1))
            .map(|_| {
                let mut cache = CorpusCache::new();
                cache.set_pool_maintained(pool_maintained);
                PublishedShard {
                    cache: Arc::new(cache),
                    globals: Arc::new(Vec::new()),
                }
            })
            .collect();
        PublishedVersion {
            epoch: 0,
            pool_maintained,
            shards,
            placement: Arc::new(Vec::new()),
            pages: Arc::new(Vec::new()),
            pool_mask: Arc::new(Vec::new()),
            merged_pool: Arc::new(Vec::new()),
            merged_order: SharedLazyOrder::new(),
        }
    }

    /// The mutation epoch this version serves.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of documents in the snapshot.
    #[inline]
    pub fn len(&self) -> usize {
        self.placement.len()
    }

    /// Whether the snapshot holds no documents.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.placement.is_empty()
    }

    /// Whether pool maintenance was enabled when the version was cut.
    #[inline]
    pub fn pool_maintained(&self) -> bool {
        self.pool_maintained
    }

    /// The merged global pool: every shard's pool members under global
    /// slots, ascending — identical in content and order to a corpus-wide
    /// [`PoolIndex::members`](rrp_ranking::PoolIndex::members).
    #[inline]
    pub fn pool_slots(&self) -> &[usize] {
        &self.merged_pool
    }

    /// The [`PageId`] of the document at `global_slot` — one direct vec
    /// index on the per-slot hot loop of every serving path.
    #[inline]
    pub fn page_of(&self, global_slot: usize) -> PageId {
        self.pages[global_slot]
    }

    /// The snapshot's [`PageStats`](rrp_ranking::PageStats) of the
    /// document at `global_slot`, relabeled to its global slot (`O(1)`).
    #[inline]
    pub fn stat_of(&self, global_slot: usize) -> rrp_ranking::PageStats {
        let (shard, local) = self.placement[global_slot];
        let mut stat = self.shards[shard as usize].cache.stats()[local as usize];
        stat.slot = global_slot;
        stat
    }

    /// Whether `global_slot` is a member of its shard's promotion pool —
    /// one direct mask index, the membership predicate the merged
    /// full-rerank path filters the global order through.
    #[inline]
    pub fn in_pool(&self, global_slot: usize) -> bool {
        self.pool_mask[global_slot]
    }

    /// The complete merged global popularity order (global slots) —
    /// identical in content and order to a corpus-wide
    /// [`PopularityIndex::order`](rrp_ranking::PopularityIndex::order).
    /// Forces the merge if no consumer ran it yet; use
    /// [`ensure_merged_order`](Self::ensure_merged_order) to observe
    /// whether this call paid.
    #[inline]
    pub fn merged_order(&self) -> &[usize] {
        self.ensure_merged_order().0
    }

    /// The complete merged global popularity order, plus whether *this*
    /// call ran the `O(n)` k-way merge — exactly one consumer per version
    /// observes `true` (the owner's `order_merges` probe counts these), so
    /// clean stretches between mutations re-merge nothing and top-k-only
    /// traffic never merges at all.
    pub fn ensure_merged_order(&self) -> (&[usize], bool) {
        let (order, ran) = self.merged_order.get_or_merge(|buffer| {
            let mut heads = Vec::new();
            rrp_ranking::merge_shard_orders_into(
                self.shards.len(),
                |s| self.shards[s].globals.len(),
                |s, i| {
                    let shard = &self.shards[s];
                    let local = shard.cache.order()[i];
                    let mut stat = shard.cache.stats()[local];
                    stat.slot = shard.globals[local];
                    stat
                },
                &mut heads,
                buffer,
            );
        });
        if ran {
            debug_assert_eq!(order.len(), self.len());
            debug_assert!(
                order.windows(2).all(|w| {
                    rrp_ranking::popularity_order(&self.stat_of(w[0]), &self.stat_of(w[1])).is_lt()
                }),
                "merged order must be the global popularity order"
            );
        }
        (order, ran)
    }

    /// Collect every shard's per-query top-`k` rest candidates into `out`
    /// (resized to the shard count; inner storage reused): the first
    /// `limit` non-pool entries of each shard's popularity order, slots
    /// rewritten to global slots — `O(limit)` per shard past any pool
    /// members sitting above the cut. The pool half comes from
    /// [`pool_slots`](Self::pool_slots). Requires maintained pools.
    pub fn collect_rest_candidates(&self, limit: usize, out: &mut Vec<ShardCandidates>) {
        out.resize_with(self.shards.len(), ShardCandidates::new);
        for (shard, candidates) in self.shards.iter().zip(out.iter_mut()) {
            candidates.collect_rest(shard.cache.view(), limit, &shard.globals);
        }
    }
}

/// Per-shard [`CorpusCache`]s repaired from shard-local dirty lists, with
/// `O(1)` global-slot addressing for mutations, a maintained merge of the
/// shard pools, and epoch-stamped immutable publication for concurrent
/// readers (see the module docs for the two-generation layout).
#[derive(Debug, Serialize, Deserialize)]
pub struct ShardedCorpusCache {
    shards: Vec<ShardCache>,
    /// Global slot → (shard, local slot).
    placement: Arc<Vec<(u32, u32)>>,
    /// Global slot → [`PageId`], maintained eagerly (append on push,
    /// rewrite on patch) so the merged-order serving paths resolve ranked
    /// slots to ids by direct indexing instead of a placement double
    /// indirection per slot.
    pages: Arc<Vec<PageId>>,
    /// Global slot → pool membership, maintained eagerly alongside the
    /// shard stats (stats are patched eagerly too, so by the time the
    /// [`in_pool`](Self::in_pool) contract holds — after a repair — this
    /// mask equals every shard pool's repaired membership). All `false`
    /// while pool maintenance is off, matching the empty shard pools.
    pool_mask: Arc<Vec<bool>>,
    /// The merged global pool under global slots, ascending. Re-merged at
    /// repair/publication time (membership only moves when a mutation
    /// dirties a slot) into a fresh `Arc` so retired versions keep theirs.
    merged_pool: Arc<Vec<usize>>,
    /// Scratch: per-shard cursors for the pool merge.
    #[serde(skip)]
    merge_heads: Vec<usize>,
    /// The diff log: global slots mutated since the last publication, in
    /// arrival order (pushes therefore ascend), deduplicated via
    /// `since_mask` so it is bounded by the corpus size.
    #[serde(skip)]
    since_publish: Vec<usize>,
    /// Per-slot "already in `since_publish`" mask (reset at publication).
    #[serde(skip)]
    since_mask: Vec<bool>,
    /// Whether `since_publish` is a *complete* diff against the currently
    /// published version. False after deserialisation, [`clear`](Self::clear)
    /// or a pool-maintenance flip — publication then charges from the
    /// actual repair and skips recycling once, falling back to
    /// copy-on-write.
    #[serde(skip)]
    diff_log_intact: bool,
    /// The diff consumed by the last [`publish`](Self::publish), retained
    /// for the follow-up [`recycle`](Self::recycle): the retiring version
    /// lags the new one by exactly these slots.
    #[serde(skip)]
    recycle_diff: Vec<usize>,
    /// Whether `recycle_diff` is a complete catch-up diff for the version
    /// retired by the last publication.
    #[serde(skip)]
    recycle_valid: bool,
    /// Recycled storage for the next pool merge.
    #[serde(skip)]
    pool_spare: Vec<usize>,
    /// Recycled storage for the next version's lazy order merge.
    #[serde(skip)]
    order_spare: Vec<usize>,
}

impl ShardedCorpusCache {
    /// An empty cache over `shard_count` shards (at least 1).
    pub fn new(shard_count: usize) -> Self {
        let mut shards = Vec::new();
        shards.resize_with(shard_count.max(1), ShardCache::default);
        ShardedCorpusCache {
            shards,
            placement: Arc::new(Vec::new()),
            pages: Arc::new(Vec::new()),
            pool_mask: Arc::new(Vec::new()),
            merged_pool: Arc::new(Vec::new()),
            merge_heads: Vec::new(),
            since_publish: Vec::new(),
            since_mask: Vec::new(),
            diff_log_intact: true,
            recycle_diff: Vec::new(),
            recycle_valid: false,
            pool_spare: Vec::new(),
            order_spare: Vec::new(),
        }
    }

    /// Enable or disable pool maintenance on every shard cache (see
    /// [`CorpusCache::set_pool_maintained`]); candidate retrieval requires
    /// it on.
    pub fn set_pool_maintained(&mut self, maintained: bool) {
        for shard in &mut self.shards {
            Arc::make_mut(&mut shard.cache).set_pool_maintained(maintained);
        }
        // The global membership mask mirrors the shard pools, so it
        // follows the flag: recompute from the eagerly-patched stats
        // (all `false` when maintenance is off — unmaintained pools are
        // empty).
        let placement = &self.placement;
        let shards = &self.shards;
        let mask = Arc::make_mut(&mut self.pool_mask);
        for global in 0..mask.len() {
            let (shard, local) = placement[global];
            mask[global] =
                maintained && shards[shard as usize].cache.stats()[local as usize].is_unexplored();
        }
        // A maintenance flip is not representable in the slot diff log:
        // invalidate it so the next publication rebuilds honestly.
        self.diff_log_intact = false;
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of cached documents.
    #[inline]
    pub fn len(&self) -> usize {
        self.placement.len()
    }

    /// Whether the cache holds no documents.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.placement.is_empty()
    }

    /// Dirty entries awaiting repair, summed over the shard-local lists.
    pub fn dirty_len(&self) -> usize {
        self.shards.iter().map(|s| s.cache.dirty_len()).sum()
    }

    /// Record `global_slot` in the since-publication diff log (deduplicated).
    fn note_mutation(&mut self, global_slot: usize) {
        if self.since_mask.len() <= global_slot {
            self.since_mask
                .resize(self.placement.len().max(global_slot + 1), false);
        }
        if !self.since_mask[global_slot] {
            self.since_mask[global_slot] = true;
            self.since_publish.push(global_slot);
        }
    }

    /// Append the document occupying the next global slot to `shard`
    /// (`O(1)` amortised). Global slots are assigned densely in push order
    /// — they are the store's global sequence numbers — so within a shard
    /// they ascend with local slots.
    pub fn push(&mut self, shard: usize, document: &Document) {
        debug_assert!(shard < self.shards.len());
        let maintained = self.pool_maintained();
        let global_slot = self.placement.len();
        let local = self.shards[shard].globals.len();
        Arc::make_mut(&mut self.placement).push((shard as u32, local as u32));
        Arc::make_mut(&mut self.pages).push(PageId::new(document.id));
        Arc::make_mut(&mut self.pool_mask).push(maintained && document.is_unexplored);
        let entry = &mut self.shards[shard];
        Arc::make_mut(&mut entry.globals).push(global_slot);
        Arc::make_mut(&mut entry.cache).push(document);
        self.note_mutation(global_slot);
    }

    /// Patch the cached stats of the document at `global_slot` after a
    /// mutation, marking exactly its shard-local slot dirty (`O(1)`
    /// amortised — a write to a buffer still shared with a published
    /// version falls back to one copy-on-write clone).
    pub fn patch(&mut self, global_slot: usize, document: &Document) {
        let maintained = self.pool_maintained();
        let (shard, local) = self.placement[global_slot];
        Arc::make_mut(&mut self.shards[shard as usize].cache).patch(local as usize, document);
        Arc::make_mut(&mut self.pages)[global_slot] = PageId::new(document.id);
        Arc::make_mut(&mut self.pool_mask)[global_slot] = maintained && document.is_unexplored;
        self.note_mutation(global_slot);
    }

    /// Repair every shard cache that has dirty slots and re-merge the
    /// global pool, returning the total number of dirty entries handed to
    /// the repairs (distinct slots per shard). Shards with a clean dirty
    /// list skip their index repairs; the pool re-merge runs whenever
    /// anything was dirty (`O(pool)` — the same class as one shard-pool
    /// repair, and amortised over every query until the next mutation).
    pub fn repair(&mut self) -> u64 {
        let handed: u64 = self
            .shards
            .iter_mut()
            .map(|s| {
                if s.cache.dirty_len() > 0 {
                    Arc::make_mut(&mut s.cache).repair()
                } else {
                    0
                }
            })
            .sum();
        if handed > 0 {
            self.merge_pools();
        }
        debug_assert!(
            {
                let from_mask: Vec<usize> = (0..self.pool_mask.len())
                    .filter(|&s| self.pool_mask[s])
                    .collect();
                from_mask == *self.merged_pool
            },
            "the eager membership mask must equal the re-merged global pool"
        );
        handed
    }

    /// Cut an immutable [`PublishedVersion`] of the current state, stamped
    /// with `epoch`: repair the writer generation, then share its buffers
    /// into the version by `Arc` clone (clean shards are shared across
    /// consecutive versions, never copied). Returns the version and the
    /// number of *charged* dirty slots — the distinct slots mutated since
    /// the last publication (or, when the diff log is not intact, the
    /// count the repair actually handled), which is what the owner's
    /// repair probes record.
    ///
    /// Publication happens at most once per mutation epoch by
    /// construction: the owner only calls this when its published
    /// version's epoch trails the live epoch counter. Follow with
    /// [`recycle`](Self::recycle) on the retired version to keep the
    /// steady-state cost `O(dirty)`.
    pub fn publish(&mut self, epoch: u64) -> (Arc<PublishedVersion>, u64) {
        let handed = self.repair();
        let charged = if self.diff_log_intact {
            self.since_publish.len() as u64
        } else {
            handed
        };
        // Hand the consumed diff to the recycle step: the version retired
        // by this publication lags the new one by exactly these slots.
        self.recycle_valid = self.diff_log_intact;
        self.recycle_diff.clear();
        std::mem::swap(&mut self.recycle_diff, &mut self.since_publish);
        for &slot in &self.recycle_diff {
            self.since_mask[slot] = false;
        }
        self.diff_log_intact = true;
        let version = PublishedVersion {
            epoch,
            pool_maintained: self.pool_maintained(),
            shards: self
                .shards
                .iter()
                .map(|s| PublishedShard {
                    cache: s.cache.clone(),
                    globals: s.globals.clone(),
                })
                .collect(),
            placement: self.placement.clone(),
            pages: self.pages.clone(),
            pool_mask: self.pool_mask.clone(),
            merged_pool: self.merged_pool.clone(),
            merged_order: SharedLazyOrder::with_seed(std::mem::take(&mut self.order_spare)),
        };
        (Arc::new(version), charged)
    }

    /// Reclaim a retired version's buffers as the next writer generation.
    ///
    /// Call after swapping a fresh [`publish`](Self::publish) result into
    /// place, handing over the previous version. If no reader still holds
    /// it, its uniquely-owned buffers are caught up by replaying the
    /// publish-to-publish diff — `fetch` resolves a global slot to its
    /// *current* document (the store lookup) — and installed as the
    /// writable generation, so subsequent mutations stay `O(1)` instead of
    /// copy-on-write. If a straggler still holds the version (or the diff
    /// log was invalidated), this is a no-op and the next mutation clones.
    pub fn recycle(&mut self, prev: Arc<PublishedVersion>, fetch: impl Fn(usize) -> Document) {
        let valid = std::mem::replace(&mut self.recycle_valid, false);
        let Some(prev) = Arc::into_inner(prev) else {
            return;
        };
        let PublishedVersion {
            shards: prev_shards,
            placement,
            pages,
            pool_mask,
            merged_pool,
            merged_order,
            ..
        } = prev;
        // The lazy-order storage is always worth reclaiming; the rest
        // needs a complete catch-up diff and a matching shape.
        self.order_spare = merged_order.into_buffer();
        if let Some(buffer) = reclaim(&self.merged_pool, merged_pool) {
            self.pool_spare = buffer;
        }
        if !valid || prev_shards.len() != self.shards.len() {
            return;
        }
        let mut shard_bufs: Vec<(Option<CorpusCache>, Option<Vec<usize>>)> =
            Vec::with_capacity(self.shards.len());
        for (mine, theirs) in self.shards.iter().zip(prev_shards) {
            let cache = if Arc::ptr_eq(&mine.cache, &theirs.cache) {
                None
            } else {
                Arc::into_inner(theirs.cache)
            };
            let globals = if Arc::ptr_eq(&mine.globals, &theirs.globals) {
                None
            } else {
                Arc::into_inner(theirs.globals)
            };
            shard_bufs.push((cache, globals));
        }
        let mut placement_buf = reclaim(&self.placement, placement);
        let mut pages_buf = reclaim(&self.pages, pages);
        let mut mask_buf = reclaim(&self.pool_mask, pool_mask);
        let maintained = self.pool_maintained();
        // Catch the reclaimed buffers up: chronological replay keeps
        // per-shard pushes in ascending local-slot order, and patched
        // slots take their current (post-diff) content in one write.
        for &global in &self.recycle_diff {
            let (shard, local) = self.placement[global];
            let (shard, local) = (shard as usize, local as usize);
            let document = fetch(global);
            let (cache_buf, globals_buf) = &mut shard_bufs[shard];
            if let Some(cache) = cache_buf {
                if local == cache.len() {
                    cache.push(&document);
                } else {
                    cache.patch(local, &document);
                }
            }
            if let Some(globals) = globals_buf {
                if local == globals.len() {
                    globals.push(global);
                }
                debug_assert_eq!(globals[local], global);
            }
            if let Some(buf) = &mut placement_buf {
                if global == buf.len() {
                    buf.push(self.placement[global]);
                }
                debug_assert_eq!(buf[global], self.placement[global]);
            }
            if let Some(buf) = &mut pages_buf {
                let page = PageId::new(document.id);
                if global == buf.len() {
                    buf.push(page);
                } else {
                    buf[global] = page;
                }
            }
            if let Some(buf) = &mut mask_buf {
                let member = maintained && document.is_unexplored;
                if global == buf.len() {
                    buf.push(member);
                } else {
                    buf[global] = member;
                }
            }
        }
        self.recycle_diff.clear();
        // Install: the caught-up buffers become the writable generation;
        // the buffers published a moment ago stay with the live version.
        for (bufs, mine) in shard_bufs.into_iter().zip(self.shards.iter_mut()) {
            if let Some(cache) = bufs.0 {
                mine.cache = Arc::new(cache);
            }
            if let Some(globals) = bufs.1 {
                mine.globals = Arc::new(globals);
            }
        }
        if let Some(buf) = placement_buf {
            self.placement = Arc::new(buf);
        }
        if let Some(buf) = pages_buf {
            self.pages = Arc::new(buf);
        }
        if let Some(buf) = mask_buf {
            self.pool_mask = Arc::new(buf);
        }
    }

    /// The merged global pool: every shard's pool members under global
    /// slots, ascending — identical in content and order to a corpus-wide
    /// [`PoolIndex::members`](rrp_ranking::PoolIndex::members), kept
    /// current by [`repair`](Self::repair) / [`publish`](Self::publish).
    #[inline]
    pub fn pool_slots(&self) -> &[usize] {
        &self.merged_pool
    }

    /// The [`PageId`] of the document at `global_slot` — one direct vec
    /// index, no placement indirection.
    #[inline]
    pub fn page_of(&self, global_slot: usize) -> PageId {
        self.pages[global_slot]
    }

    /// The cached [`PageStats`](rrp_ranking::PageStats) of the document at
    /// `global_slot`, relabeled to its global slot (`O(1)`).
    #[inline]
    pub fn stat_of(&self, global_slot: usize) -> rrp_ranking::PageStats {
        let (shard, local) = self.placement[global_slot];
        let mut stat = self.shards[shard as usize].cache.stats()[local as usize];
        stat.slot = global_slot;
        stat
    }

    /// Whether `global_slot` is a member of its shard's promotion pool —
    /// one direct mask index, no placement indirection. Requires
    /// maintained pools and a preceding [`repair`](Self::repair) (the
    /// repair debug-asserts this mask against the re-merged global pool).
    #[inline]
    pub fn in_pool(&self, global_slot: usize) -> bool {
        self.pool_mask[global_slot]
    }

    /// Whether pool maintenance is enabled on the shard caches (see
    /// [`set_pool_maintained`](Self::set_pool_maintained)).
    pub fn pool_maintained(&self) -> bool {
        self.shards
            .first()
            .is_some_and(|s| s.cache.pool_maintained())
    }

    /// Re-merge the shard pools into the maintained global pool — the
    /// *same* ascending-slot k-way merge the per-query candidate path
    /// runs ([`merge_ascending_slots_into`](rrp_ranking::merge_ascending_slots_into)),
    /// executed once per repair instead of once per query. The merge
    /// writes into recycled spare storage and swaps it in as a fresh
    /// `Arc`, leaving any published version's pool untouched.
    fn merge_pools(&mut self) {
        let mut buffer = std::mem::take(&mut self.pool_spare);
        let shards = &self.shards;
        rrp_ranking::merge_ascending_slots_into(
            shards.len(),
            |s| shards[s].cache.pool().len(),
            |s, i| shards[s].globals[shards[s].cache.pool().members()[i]],
            &mut self.merge_heads,
            &mut buffer,
        );
        self.merged_pool = Arc::new(buffer);
    }

    /// Collect every shard's per-query top-`k` rest candidates into `out`
    /// (resized to the shard count; inner storage reused): the first
    /// `limit` non-pool entries of each shard's popularity order, slots
    /// rewritten to global slots — `O(limit)` per shard past any pool
    /// members sitting above the cut. The pool half comes from
    /// [`pool_slots`](Self::pool_slots). Requires maintained pools and a
    /// preceding [`repair`](Self::repair).
    pub fn collect_rest_candidates(&self, limit: usize, out: &mut Vec<ShardCandidates>) {
        out.resize_with(self.shards.len(), ShardCandidates::new);
        for (shard, candidates) in self.shards.iter().zip(out.iter_mut()) {
            candidates.collect_rest(shard.cache.view(), limit, &shard.globals);
        }
    }

    /// [`collect_rest_candidates`](Self::collect_rest_candidates) with the
    /// pool halves included — the self-contained per-query form the merge
    /// goldens pin; serving tiers use the rest-only form plus the
    /// maintained [`pool_slots`](Self::pool_slots) instead.
    pub fn collect_candidates(&self, limit: usize, out: &mut Vec<ShardCandidates>) {
        out.resize_with(self.shards.len(), ShardCandidates::new);
        for (shard, candidates) in self.shards.iter().zip(out.iter_mut()) {
            candidates.collect(shard.cache.view(), limit, &shard.globals);
        }
    }

    /// Discard everything and start over with the same shard count and
    /// pool-maintenance setting — the first half of a rebuild; the owner
    /// then replays every document through [`push`](Self::push) in global
    /// order and calls [`repair`](Self::repair). Invalidates the diff log
    /// (the next publication falls back to copy-on-write once).
    pub fn clear(&mut self) {
        let maintained = self.pool_maintained();
        for shard in self.shards.iter_mut() {
            *shard = ShardCache::default();
            Arc::make_mut(&mut shard.cache).set_pool_maintained(maintained);
        }
        self.placement = Arc::new(Vec::new());
        self.pages = Arc::new(Vec::new());
        self.pool_mask = Arc::new(Vec::new());
        self.merged_pool = Arc::new(Vec::new());
        self.since_publish.clear();
        self.since_mask.clear();
        self.diff_log_intact = false;
        self.recycle_valid = false;
    }
}

/// Reclaim a retired `Arc` buffer unless it is (a) still the writer's own
/// buffer (shared, nothing to reclaim) or (b) held by a straggling reader.
fn reclaim<T>(current: &Arc<T>, prev: Arc<T>) -> Option<T> {
    if Arc::ptr_eq(current, &prev) {
        None
    } else {
        Arc::into_inner(prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrp_ranking::{merge_shard_candidates_into, MergedCandidates, PoolIndex, PopularityIndex};

    fn documents(n: u64) -> Vec<Document> {
        (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    Document::unexplored(i)
                } else {
                    Document::established(i, 1.0 - (i % 11) as f64 * 0.05).with_age(i % 6)
                }
            })
            .collect()
    }

    /// Route like a store would: any deterministic id hash works, the
    /// invariants only need per-shard ascending global slots.
    fn shard_of(id: u64, shards: usize) -> usize {
        (id as usize * 7 + 1) % shards
    }

    fn filled(docs: &[Document], shards: usize) -> ShardedCorpusCache {
        let mut cache = ShardedCorpusCache::new(shards);
        for doc in docs {
            cache.push(shard_of(doc.id, shards), doc);
        }
        cache
    }

    /// The corpus-wide reference: global stats, order, and pool.
    fn global_reference(docs: &[Document]) -> (PopularityIndex, PoolIndex) {
        let mut stats = Vec::new();
        crate::engine::RankPromotionEngine::document_stats(docs, &mut stats);
        (PopularityIndex::build(&stats), PoolIndex::build(&stats))
    }

    fn expected_rest(order: &PopularityIndex, pool: &PoolIndex, limit: usize) -> Vec<usize> {
        order
            .order()
            .iter()
            .copied()
            .filter(|&s| !pool.contains(s))
            .take(limit)
            .collect()
    }

    #[test]
    fn merged_candidates_equal_the_corpus_wide_derivation() {
        let docs = documents(60);
        let (order, pool) = global_reference(&docs);
        for shards in [1usize, 2, 3, 8] {
            let mut cache = filled(&docs, shards);
            assert_eq!(cache.len(), 60);
            assert_eq!(cache.shard_count(), shards);
            cache.repair();

            // The maintained merged pool is the corpus-wide pool.
            assert_eq!(cache.pool_slots(), pool.members(), "{shards} shards");

            // And the self-contained per-query collection merges to the
            // same pool plus the corpus-wide non-pool prefix.
            let mut candidates = Vec::new();
            cache.collect_candidates(7, &mut candidates);
            let mut merged = MergedCandidates::new();
            merge_shard_candidates_into(&candidates, 7, &mut merged);
            assert_eq!(merged.pool(), pool.members(), "{shards} shards");
            let rest_slots: Vec<usize> = merged.rest().iter().map(|p| p.slot).collect();
            assert_eq!(
                rest_slots,
                expected_rest(&order, &pool, 7),
                "{shards} shards"
            );

            // The rest-only serving collection yields the same prefix.
            cache.collect_rest_candidates(7, &mut candidates);
            merge_shard_candidates_into(&candidates, 7, &mut merged);
            assert!(merged.pool().is_empty());
            let rest_slots: Vec<usize> = merged.rest().iter().map(|p| p.slot).collect();
            assert_eq!(
                rest_slots,
                expected_rest(&order, &pool, 7),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn patches_flow_through_the_shard_local_dirty_lists() {
        let mut docs = documents(40);
        let mut cache = filled(&docs, 4);
        cache.repair();
        assert_eq!(cache.dirty_len(), 0);

        docs[0].is_unexplored = false; // slot 0 leaves the pool
        cache.patch(0, &docs[0]);
        docs[7].popularity = 3.0; // slot 7 moves to the top of the order
        cache.patch(7, &docs[7]);
        docs.push(Document::unexplored(99)); // slot 40 joins the pool
        cache.push(shard_of(99, 4), docs.last().unwrap());
        assert_eq!(cache.dirty_len(), 3);
        assert_eq!(cache.repair(), 3);

        let (order, pool) = global_reference(&docs);
        assert_eq!(cache.pool_slots(), pool.members());
        assert!(!cache.pool_slots().contains(&0));
        assert!(cache.pool_slots().contains(&40));
        let mut candidates = Vec::new();
        cache.collect_rest_candidates(5, &mut candidates);
        let mut merged = MergedCandidates::new();
        merge_shard_candidates_into(&candidates, 5, &mut merged);
        let rest_slots: Vec<usize> = merged.rest().iter().map(|p| p.slot).collect();
        assert_eq!(rest_slots[0], 7, "the boosted slot leads the order");
        assert_eq!(rest_slots, expected_rest(&order, &pool, 5));
    }

    #[test]
    fn published_order_equals_the_corpus_wide_popularity_order() {
        let mut docs = documents(60);
        let (order, _) = global_reference(&docs);
        for shards in [1usize, 2, 3, 8] {
            let mut cache = filled(&docs, shards);
            let (version, charged) = cache.publish(1);
            assert_eq!(charged, 60, "the warm-up publication repairs every slot");
            let (merged, ran) = version.ensure_merged_order();
            assert!(ran, "the first full-order consumer merges");
            assert_eq!(merged, order.order(), "{shards} shards");
            let (_, ran) = version.ensure_merged_order();
            assert!(!ran, "a published order must not re-merge");
        }

        // Mutations publish into a fresh version; its order re-merges to
        // the fresh corpus-wide derivation, and only the first full-order
        // consumer of that version pays.
        let mut cache = filled(&docs, 4);
        let (v1, _) = cache.publish(1);
        v1.ensure_merged_order();
        docs[5].popularity = 4.0;
        cache.patch(5, &docs[5]);
        docs.push(Document::unexplored(77));
        cache.push(shard_of(77, 4), docs.last().unwrap());
        let (v2, charged) = cache.publish(2);
        assert_eq!(charged, 2, "exactly the mutated slots are charged");
        cache.recycle(v1, |slot| docs[slot]);
        let (merged, ran) = v2.ensure_merged_order();
        assert!(ran, "a fresh version merges once");
        let (order, _) = global_reference(&docs);
        assert_eq!(merged, order.order());
        assert_eq!(merged[0], 5, "the boosted slot leads");
        assert!(!v2.ensure_merged_order().1);
    }

    #[test]
    fn recycled_publications_stay_bit_identical_to_fresh_derivations() {
        // The steady-state loop: publish → mutate → publish → recycle,
        // with every published version compared against a from-scratch
        // corpus-wide derivation. This is the recycling catch-up's
        // correctness gate: reclaimed buffers replay exactly the
        // publish-to-publish diff.
        let mut docs = documents(50);
        let mut cache = filled(&docs, 3);
        let (mut live, _) = cache.publish(1);
        let mut next_id = 1_000u64;
        for round in 0..12u64 {
            // A visit, a popularity move, and (every third round) an
            // insert — routed exactly like the service would.
            let visit = (round as usize * 7) % docs.len();
            docs[visit].is_unexplored = false;
            cache.patch(visit, &docs[visit]);
            let moved = (round as usize * 11 + 3) % docs.len();
            docs[moved].popularity = 0.1 + (round as f64) * 0.25;
            cache.patch(moved, &docs[moved]);
            if round % 3 == 0 {
                let doc = Document::unexplored(next_id);
                next_id += 1;
                docs.push(doc);
                cache.push(shard_of(doc.id, 3), &doc);
            }
            let (version, _) = cache.publish(round + 2);
            cache.recycle(std::mem::replace(&mut live, version.clone()), |slot| {
                docs[slot]
            });
            let (order, pool) = global_reference(&docs);
            assert_eq!(version.pool_slots(), pool.members(), "round {round}");
            assert_eq!(version.merged_order(), order.order(), "round {round}");
            assert_eq!(version.len(), docs.len());
            for (slot, doc) in docs.iter().enumerate() {
                assert_eq!(version.page_of(slot), PageId::new(doc.id));
                assert_eq!(version.in_pool(slot), doc.is_unexplored);
            }
        }
    }

    #[test]
    fn straggling_readers_only_defer_recycling() {
        // A reader that never lets go of an old version must not corrupt
        // anything: recycling is skipped and the writer falls back to
        // copy-on-write.
        let mut docs = documents(30);
        let mut cache = filled(&docs, 2);
        let (v1, _) = cache.publish(1);
        let straggler = v1.clone(); // a reader parks on the version
        docs[4].popularity = 9.0;
        cache.patch(4, &docs[4]);
        let (v2, _) = cache.publish(2);
        cache.recycle(v1, |slot| docs[slot]); // strong count 2: skipped
        docs[9].is_unexplored = false;
        cache.patch(9, &docs[9]); // copy-on-write path
        let (v3, _) = cache.publish(3);
        cache.recycle(v2, |slot| docs[slot]);
        let (order, pool) = global_reference(&docs);
        assert_eq!(v3.merged_order(), order.order());
        assert_eq!(v3.pool_slots(), pool.members());
        // The parked version still serves its own epoch's state.
        assert_eq!(straggler.epoch(), 1);
        assert!(straggler.in_pool(9), "old versions are immutable");
    }

    #[test]
    fn clean_shards_are_shared_across_versions_not_copied() {
        let docs = documents(40);
        let mut cache = filled(&docs, 4);
        let (v1, _) = cache.publish(1);
        // Mutate one slot; every shard it does not live on must share its
        // cache allocation with the previous version.
        let mutated = 0usize;
        let mut doc = docs[mutated];
        doc.popularity = 5.0;
        cache.patch(mutated, &doc);
        let (v2, _) = cache.publish(2);
        let (dirty_shard, _) = v2.placement[mutated];
        let mut shared = 0;
        for (s, (a, b)) in v1.shards.iter().zip(v2.shards.iter()).enumerate() {
            if s == dirty_shard as usize {
                assert!(
                    !Arc::ptr_eq(&a.cache, &b.cache),
                    "the dirty shard republishes"
                );
            } else {
                assert!(Arc::ptr_eq(&a.cache, &b.cache), "clean shard {s} is shared");
                shared += 1;
            }
        }
        assert_eq!(shared, 3);
    }

    #[test]
    fn stat_of_and_in_pool_resolve_through_the_placement_map() {
        let docs = documents(30);
        let mut cache = filled(&docs, 3);
        cache.repair();
        let mut stats = Vec::new();
        crate::engine::RankPromotionEngine::document_stats(&docs, &mut stats);
        for (slot, stat) in stats.iter().enumerate() {
            assert_eq!(cache.stat_of(slot), *stat);
            assert_eq!(cache.in_pool(slot), docs[slot].is_unexplored);
        }
        assert!(cache.pool_maintained());
        // The published view resolves identically.
        let (version, _) = cache.publish(1);
        for (slot, stat) in stats.iter().enumerate() {
            assert_eq!(version.stat_of(slot), *stat);
            assert_eq!(version.in_pool(slot), docs[slot].is_unexplored);
        }
        assert!(version.pool_maintained());
        assert_eq!(version.shard_count(), 3);
        assert!(!version.is_empty());
    }

    #[test]
    fn page_of_resolves_ids_through_the_owning_shard() {
        let docs = documents(25);
        let mut cache = filled(&docs, 3);
        cache.repair();
        for (slot, doc) in docs.iter().enumerate() {
            assert_eq!(cache.page_of(slot), PageId::new(doc.id));
        }
    }

    #[test]
    fn eager_membership_mask_tracks_mutations_and_the_maintenance_flag() {
        let mut docs = documents(30);
        let mut cache = filled(&docs, 3);
        cache.repair();
        // Push/patch keep the direct-index mask equal to a fresh scan.
        docs[0].is_unexplored = false; // slot 0 (unexplored) leaves
        cache.patch(0, &docs[0]);
        docs[1].is_unexplored = true; // slot 1 (established) joins
        docs[1].popularity = 0.0;
        cache.patch(1, &docs[1]);
        docs.push(Document::unexplored(80)); // slot 30 joins
        cache.push(shard_of(80, 3), docs.last().unwrap());
        cache.repair(); // debug-asserts mask ≡ re-merged global pool
        for (slot, doc) in docs.iter().enumerate() {
            assert_eq!(cache.in_pool(slot), doc.is_unexplored, "slot {slot}");
            assert_eq!(cache.page_of(slot), PageId::new(doc.id), "slot {slot}");
        }
        // Turning maintenance off empties the mask (unmaintained pools are
        // empty); turning it back on recomputes from the patched stats.
        cache.set_pool_maintained(false);
        assert!((0..docs.len()).all(|s| !cache.in_pool(s)));
        cache.set_pool_maintained(true);
        cache.repair();
        for (slot, doc) in docs.iter().enumerate() {
            assert_eq!(cache.in_pool(slot), doc.is_unexplored, "slot {slot}");
        }
    }

    #[test]
    fn clear_keeps_shape_and_pool_setting_for_a_replay() {
        let docs = documents(20);
        let mut cache = filled(&docs, 3);
        cache.set_pool_maintained(false);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.shard_count(), 3);
        assert!(cache.pool_slots().is_empty());
        for doc in &docs {
            cache.push(shard_of(doc.id, 3), doc);
        }
        cache.repair();
        assert_eq!(cache.len(), docs.len());
        // Pool maintenance stayed off across the clear (candidate
        // retrieval is gated on it, so the setting must survive a replay).
        assert!(cache.shards.iter().all(|s| !s.cache.pool_maintained()));
    }

    /// The PR 4 `is_unexplored` tripwire, at the shard tier: mutating a
    /// document's awareness *without* routing the mutation through
    /// [`ShardedCorpusCache::patch`] leaves that shard's pool index stale,
    /// and the membership debug assertion inside the next shard-local
    /// repair catches it instead of silently serving a drifted pool.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "is_consistent")]
    fn unmarked_shard_local_mutation_trips_the_membership_assertion() {
        let mut docs = documents(12);
        let mut cache = filled(&docs, 3);
        cache.repair();

        // Visit the unexplored slot 0 behind the cache's back (no dirty
        // mark), then dirty the *same shard* through a legitimate patch:
        // slots 0 and 3 both route to shard `shard_of(0, 3)`, so the next
        // repair runs on the drifted shard and its membership assertion
        // fires.
        assert_eq!(shard_of(0, 3), shard_of(3, 3));
        docs[0].is_unexplored = false;
        let (shard, local) = cache.placement[0];
        let stat = crate::engine::RankPromotionEngine::document_stat(local as usize, &docs[0]);
        Arc::make_mut(&mut cache.shards[shard as usize].cache).stats_mut_unmarked()
            [local as usize] = stat;
        docs[3].popularity = 0.9;
        cache.patch(3, &docs[3]);
        cache.repair();
    }
}
