//! Convenience prelude: `use rrp_core::prelude::*;` pulls in the types
//! needed for the common embedding and evaluation workflows.

pub use crate::advisor::{Advice, ParameterAdvisor};
pub use crate::document::{Document, QueryContext};
pub use crate::engine::RankPromotionEngine;

pub use rrp_analytic::{AnalyticModel, QualityGroups, RankingModel, SolvedModel};
pub use rrp_attention::RankBias;
pub use rrp_model::{CommunityConfig, PowerLawQuality, Quality, QualityDistribution};
pub use rrp_ranking::{
    PageStats, PolicyKind, PopularityRanking, PromotionConfig, PromotionRule, QualityOracleRanking,
    RandomizedRankPromotion, RankBuffers, RankingPolicy,
};
pub use rrp_sim::{SimConfig, SimMetrics, Simulation};

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_names_resolve() {
        use super::*;
        // Touch a few types so the re-exports are exercised by the compiler.
        let _engine = RankPromotionEngine::recommended();
        let _config: PromotionConfig = PromotionConfig::recommended(2);
        let _community = CommunityConfig::paper_default();
        let _policy = PopularityRanking;
    }
}
