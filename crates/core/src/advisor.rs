//! Parameter advice from the analytic model.
//!
//! The paper's recommendation (selective rule, `r = 0.1`, `k ∈ {1, 2}`) is
//! robust across the community types it studied, but Section 7 shows the
//! *benefit* of promotion varies a lot with community characteristics —
//! very visit-rich communities gain little, visit-starved ones gain a lot.
//! [`ParameterAdvisor`] evaluates the analytic model over a small grid of
//! `(k, r)` settings for a concrete community and reports the best setting
//! together with its predicted QPC, so an operator can decide whether
//! promotion is worth enabling and how aggressively.

use rrp_analytic::{AnalyticModel, QualityGroups, RankingModel, SolverOptions};
use rrp_model::{CommunityConfig, PowerLawQuality};
use rrp_ranking::{PromotionConfig, PromotionRule};
use serde::{Deserialize, Serialize};

/// One evaluated candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateOutcome {
    /// Starting rank `k`.
    pub start_rank: usize,
    /// Degree of randomization `r`.
    pub degree: f64,
    /// Predicted normalized QPC under this configuration.
    pub normalized_qpc: f64,
}

/// Advice produced by [`ParameterAdvisor::advise`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Advice {
    /// Predicted normalized QPC of plain popularity ranking (the baseline).
    pub baseline_qpc: f64,
    /// Every candidate evaluated, in the order they were tried.
    pub candidates: Vec<CandidateOutcome>,
    /// The best candidate found.
    pub best: CandidateOutcome,
}

impl Advice {
    /// The promotion configuration corresponding to the best candidate.
    pub fn recommended_config(&self) -> PromotionConfig {
        PromotionConfig::new(
            PromotionRule::Selective,
            self.best.start_rank,
            self.best.degree,
        )
        .expect("grid candidates are valid")
    }

    /// Predicted relative QPC improvement of the best candidate over the
    /// baseline.
    pub fn predicted_improvement(&self) -> f64 {
        if self.baseline_qpc <= 0.0 {
            return 0.0;
        }
        self.best.normalized_qpc / self.baseline_qpc - 1.0
    }
}

/// Evaluates candidate promotion settings for a community using the
/// analytic model.
#[derive(Debug, Clone)]
pub struct ParameterAdvisor {
    degrees: Vec<f64>,
    start_ranks: Vec<usize>,
    solver: SolverOptions,
}

impl Default for ParameterAdvisor {
    fn default() -> Self {
        ParameterAdvisor {
            degrees: vec![0.05, 0.1, 0.2],
            start_ranks: vec![1, 2],
            solver: SolverOptions::default(),
        }
    }
}

impl ParameterAdvisor {
    /// An advisor that evaluates the given degree and starting-rank grids.
    pub fn with_grid(degrees: Vec<f64>, start_ranks: Vec<usize>) -> Self {
        assert!(!degrees.is_empty(), "need at least one degree");
        assert!(!start_ranks.is_empty(), "need at least one starting rank");
        ParameterAdvisor {
            degrees,
            start_ranks,
            solver: SolverOptions::default(),
        }
    }

    /// Override the analytic solver options (e.g. fewer iterations for a
    /// quicker, rougher answer).
    pub fn with_solver_options(mut self, options: SolverOptions) -> Self {
        self.solver = options;
        self
    }

    /// Evaluate the grid for `community` (page quality assumed to follow
    /// the paper's power-law distribution) and return the advice.
    pub fn advise(&self, community: CommunityConfig) -> Result<Advice, String> {
        community.validate().map_err(|e| e.to_string())?;
        let groups =
            QualityGroups::from_distribution(&PowerLawQuality::paper_default(), community.pages());

        let baseline_qpc =
            AnalyticModel::new(community, groups.clone(), RankingModel::NonRandomized)?
                .with_options(self.solver)
                .solve()
                .normalized_qpc();

        let mut candidates = Vec::new();
        for &start_rank in &self.start_ranks {
            for &degree in &self.degrees {
                let model = RankingModel::Selective { start_rank, degree };
                let solved = AnalyticModel::new(community, groups.clone(), model)?
                    .with_options(self.solver)
                    .solve();
                candidates.push(CandidateOutcome {
                    start_rank,
                    degree,
                    normalized_qpc: solved.normalized_qpc(),
                });
            }
        }
        let best = candidates
            .iter()
            .copied()
            .max_by(|a, b| {
                a.normalized_qpc
                    .partial_cmp(&b.normalized_qpc)
                    .expect("QPC is finite")
            })
            .expect("grid is non-empty");
        Ok(Advice {
            baseline_qpc,
            candidates,
            best,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entrenched_community() -> CommunityConfig {
        // Paper-default proportions, shrunk for test speed: visit-starved,
        // so promotion should clearly help.
        CommunityConfig::builder()
            .pages(2_000)
            .users(200)
            .monitored_users(20)
            .total_visits_per_day(200.0)
            .expected_lifetime_days(547.5)
            .build()
            .unwrap()
    }

    #[test]
    fn advisor_finds_promotion_beneficial_for_entrenched_communities() {
        let advice = ParameterAdvisor::default()
            .advise(entrenched_community())
            .unwrap();
        assert_eq!(advice.candidates.len(), 6);
        assert!(advice.best.normalized_qpc > advice.baseline_qpc);
        assert!(advice.predicted_improvement() > 0.05);
        let config = advice.recommended_config();
        assert!(config.degree > 0.0);
        assert!(config.start_rank >= 1);
    }

    #[test]
    fn custom_grid_is_respected() {
        let advisor = ParameterAdvisor::with_grid(vec![0.1], vec![2]);
        let advice = advisor.advise(entrenched_community()).unwrap();
        assert_eq!(advice.candidates.len(), 1);
        assert_eq!(advice.best.start_rank, 2);
        assert!((advice.best.degree - 0.1).abs() < 1e-12);
    }

    #[test]
    fn invalid_community_is_rejected() {
        let bad = CommunityConfig::builder().monitored_users(10_000);
        // Builder itself rejects it; construct via paper_default then break it
        // is not possible without unsafe, so validate the advisor's error path
        // through the builder error instead.
        assert!(bad.build().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one degree")]
    fn empty_grid_panics() {
        ParameterAdvisor::with_grid(vec![], vec![1]);
    }
}
